"""Split-plan caching: prepared operands for the split-GEMM fast path.

The LFD hot loop multiplies a *frozen* operand — ``Psi(0)``, fixed for
the 500 QD steps of an SCF block — against a fresh ``Psi(t)`` three
times per step.  The naive emulation re-derives everything about the
frozen side on every call: contiguous real/imag parts, the
reduced-precision split terms, even the plain contiguous copy the
standard path wants.  All of that work is *pure* in the operand's
bytes, so it can be computed once and cached.

Three layers:

* :class:`PreparedOperand` — wraps one array and memoises every derived
  form the GEMM kernels ask for, keyed by ``(kind, trans, dtype, ...)``.
  Mutating the array without telling the plan would silently desynchronise
  the cache, so the class offers an explicit :meth:`invalidate` plus a
  content fingerprint (:meth:`fingerprint`, :meth:`refresh_if_changed`)
  for callers that cannot prove frozenness.
* :func:`prepare` — identity-keyed registry so repeated ``prepare(x)``
  on the same live array returns the same plan (the
  :class:`~repro.dcmesh.nlp.NonlocalPropagator` path).
* an anonymous LRU (:func:`lookup_anonymous`) — content-fingerprint
  keyed, consulted by the GEMM entry points for plain ``ndarray``
  operands above a size threshold.  A repeated call with the same bytes
  hits the cache after one cheap hashing pass; a mutated or new array
  misses and is re-split.  Because the key includes a full content
  digest, a hit can only return derived forms of *identical bytes*, so
  the bitwise-equivalence contract survives arbitrary mutation.

Caching cannot change results: every derived form is produced by
exactly the array operations the cold path would run (same casts, same
``ascontiguousarray`` packing, same split order), so downstream
``np.matmul`` calls see byte-identical inputs either way.

Backend-native mirrors: when a non-NumPy :class:`~repro.blas.backend.
ArrayBackend` is active, the compute kernels ask the plan for *native*
copies of these derived forms (``contiguous_native`` / ``part_native``
/ ``split_stack_native``).  Mirrors are cached under keys that include
``backend.cache_key``, so a frozen operand is staged onto a device once
per SCF block and a backend switch can never serve another backend's
arrays (see :meth:`PreparedOperand.native_mirror`).
"""

from __future__ import annotations

import contextlib
import hashlib
import threading
from collections import OrderedDict
from typing import Dict, Iterator, Optional, Tuple, Union

import numpy as np

from repro.blas.rounding import (
    emulated_fp64_split_terms,
    extend_split,
    ozaki_slice_terms,
    split_terms_residual,
)
from repro.telemetry.provenance import current_site_id as _current_site_id
from repro.telemetry.registry import active as _telemetry_active

__all__ = [
    "PreparedOperand",
    "OrientedOperand",
    "prepare",
    "release",
    "operand_handle",
    "lookup_anonymous",
    "plan_cache_enabled",
    "set_plan_cache",
    "plan_cache",
    "plan_cache_clear",
    "plan_cache_info",
]

#: Plain-ndarray operands at or above this byte count are worth a
#: fingerprint pass to consult the anonymous LRU (one read-only pass
#: against the ~10 read+write passes a re-split would cost).
ANON_MIN_BYTES = 1 << 16

#: Anonymous plans kept alive (LRU).  Each holds its operand's splits,
#: so keep the window small: the hot loop only ever re-uses a handful
#: of frozen matrices.
ANON_CACHE_SIZE = 8


def _fingerprint_array(x: np.ndarray) -> bytes:
    """Content digest of ``x`` (bytes + shape + dtype).

    blake2b at 16 bytes: fast (single read-only pass) and wide enough
    that an accidental collision is never the explanation for anything.
    """
    t = _telemetry_active()
    if t is not None:
        t.count("blas.plan.fingerprints")
        t.count("blas.plan.fingerprint_bytes", x.nbytes)
    h = hashlib.blake2b(digest_size=16)
    h.update(str((x.shape, x.dtype.str)).encode())
    h.update(np.ascontiguousarray(x).view(np.uint8).reshape(-1).data)
    return h.digest()


def _split_mode_label(keep_bits: int, n_terms: int) -> str:
    """Human-readable label for a split's precision family (counters)."""
    base = {7: "bf16", 10: "tf32"}.get(keep_bits, f"kb{keep_bits}")
    return base if n_terms == 1 else f"{base}x{n_terms}"


def _oriented(x: np.ndarray, trans: str) -> np.ndarray:
    """Apply a BLAS trans flag to the last two axes (view, no copy)."""
    if trans == "N":
        return x
    if trans == "T":
        return np.swapaxes(x, -1, -2)
    if trans == "C":
        out = np.swapaxes(x, -1, -2)
        return out.conj() if np.iscomplexobj(out) else out
    raise ValueError(f"trans must be 'N', 'T' or 'C', got {trans!r}")


class PreparedOperand:
    """Caches every derived form of one (frozen) GEMM operand.

    The plan never copies the wrapped array up front; each derived form
    is built on first use and kept until :meth:`invalidate`.  All
    derivations replicate the cold path's exact array operations, so a
    cached form is byte-identical to what an uncached call would build.
    """

    __slots__ = ("array", "version", "_derived", "_lock", "_fingerprint")

    def __init__(self, array: np.ndarray):
        self.array = np.asarray(array)
        self.version = 0
        self._derived: Dict[tuple, object] = {}
        self._lock = threading.Lock()
        self._fingerprint: Optional[bytes] = None

    # -- lifecycle -----------------------------------------------------

    def invalidate(self) -> None:
        """Drop all cached derived forms (call after mutating the array)."""
        t = _telemetry_active()
        if t is not None:
            t.count("blas.plan.invalidated")
        with self._lock:
            self._derived.clear()
            self._fingerprint = None
            self.version += 1

    def fingerprint(self) -> bytes:
        """Content digest of the wrapped array (cached until invalidated)."""
        fp = self._fingerprint
        if fp is None:
            fp = _fingerprint_array(self.array)
            with self._lock:
                self._fingerprint = fp
        return fp

    def refresh_if_changed(self) -> bool:
        """Re-fingerprint the array; invalidate and return True if its
        content no longer matches the cached plans.

        With no baseline fingerprint there is no way to prove the cached
        forms match the current bytes, so the plan is conservatively
        invalidated (and a baseline established for the next call).
        Callers that want the cheap no-op path must fingerprint eagerly
        — :class:`~repro.dcmesh.nlp.NonlocalPropagator` does so at
        construction.
        """
        old = self._fingerprint
        new = _fingerprint_array(self.array)
        t = _telemetry_active()
        if t is not None:
            t.count("blas.plan.refreshes")
        if old is None or new != old:
            if t is not None:
                t.count("blas.plan.refresh_invalidations")
            self.invalidate()
            with self._lock:
                self._fingerprint = new
            return True
        return False

    # -- derived forms -------------------------------------------------

    def _derive(self, key: tuple, builder):
        got = self._derived.get(key)
        t = _telemetry_active()
        if got is None:
            if t is not None:
                t.count(
                    "blas.plan.derive",
                    result="build",
                    kind=key[0],
                    site=_current_site_id() or "-",
                )
            got = builder()
            with self._lock:
                got = self._derived.setdefault(key, got)
        elif t is not None:
            t.count(
                "blas.plan.derive",
                result="hit",
                kind=key[0],
                site=_current_site_id() or "-",
            )
        return got

    def oriented(self, trans: str, dtype: np.dtype) -> np.ndarray:
        """``op(A)`` cast to ``dtype`` and packed C-contiguous."""
        dtype = np.dtype(dtype)

        def build():
            op = _oriented(self.array.astype(dtype, copy=False), trans)
            return np.ascontiguousarray(op)

        return self._derive(("oriented", trans, dtype.str), build)

    def part(self, trans: str, dtype: np.dtype, which: str) -> np.ndarray:
        """Contiguous real/imag part of ``op(A)`` (4M/3M decomposition).

        ``which`` is ``'re'``, ``'im'`` or ``'re+im'`` (the 3M sum
        term).  ``dtype`` is the *complex* working dtype; the parts are
        stored in the matching real dtype, exactly as
        :func:`repro.blas.complex3m._parts` packs them.
        """
        dtype = np.dtype(dtype)
        rdt = np.float64 if dtype == np.complex128 else np.float32

        def build():
            if which == "re+im":
                return self.part(trans, dtype, "re") + self.part(trans, dtype, "im")
            op = _oriented(self.array.astype(dtype, copy=False), trans)
            comp = op.real if which == "re" else op.imag
            return np.ascontiguousarray(comp, dtype=rdt)

        return self._derive(("part", trans, dtype.str, which), build)

    def split_stack(
        self,
        trans: str,
        keep_bits: int,
        n_terms: int,
        *,
        part: Optional[str] = None,
        dtype: Optional[np.dtype] = None,
    ) -> np.ndarray:
        """Stacked split terms, shape ``(n_terms, *op_shape)``, C-contiguous.

        ``part=None`` splits the (real) operand itself; ``'re'``/``'im'``
        split the complex decomposition's parts.  Each ``stack[i]`` is a
        contiguous view bit-identical to ``split_terms(...)[i]``.

        Splits of the same operand at different term counts share work:
        because term ``i`` of a split depends only on the running
        residual (prefix property, see
        :func:`repro.blas.rounding.split_terms_residual`), a request for
        ``n`` terms when a ``k < n``-term split is already cached only
        computes the ``n - k`` missing terms from the cached residual —
        the path a precision escalation (BF16 → BF16X2/X3) takes, so a
        mode switch never re-prepares the whole operand.  Extension is
        bitwise-exact: the FP32 rounding/subtraction sequence is the
        same one a from-scratch split would run.
        """
        key = ("split", trans, keep_bits, n_terms, part)
        t = _telemetry_active()
        got = self._derived.get(key)
        if got is not None:
            if t is not None:
                t.count(
                    "blas.plan.split",
                    result="hit",
                    mode=_split_mode_label(keep_bits, n_terms),
                    site=_current_site_id() or "-",
                )
            return got

        # Cache miss: extend the widest cached shorter split (needs its
        # residual) before falling back to a from-scratch decomposition.
        prev_stack = prev_resid = None
        prev_n = 0
        for n in range(n_terms - 1, 0, -1):
            resid = self._derived.get(("split_resid", trans, keep_bits, n, part))
            stack = self._derived.get(("split", trans, keep_bits, n, part))
            if resid is not None and stack is not None:
                prev_stack, prev_resid, prev_n = stack, resid, n
                break
        if prev_stack is not None:
            terms, residual = extend_split(
                tuple(prev_stack), prev_resid, keep_bits, n_terms - prev_n
            )
            result = "extend"
        else:
            if part is None:
                base = self.oriented(trans, np.float32)
            else:
                base = self.part(trans, np.dtype(dtype or np.complex64), part)
            terms, residual = split_terms_residual(base, keep_bits, n_terms)
            result = "full"
        if t is not None:
            t.count(
                "blas.plan.split",
                result=result,
                mode=_split_mode_label(keep_bits, n_terms),
                site=_current_site_id() or "-",
            )
        built = np.stack(terms)
        with self._lock:
            got = self._derived.setdefault(key, built)
            self._derived.setdefault(
                ("split_resid", trans, keep_bits, n_terms, part), residual
            )
        return got

    def ozaki_stack(
        self,
        trans: str,
        n_slices: int,
        *,
        part: Optional[str] = None,
        operand: str = "a",
        dtype: Optional[np.dtype] = None,
    ) -> np.ndarray:
        """Stacked Ozaki INT8 slice terms, ``(n_slices, *op_shape)``.

        ``operand`` selects the contraction axis of the fibre scaling:
        ``'a'`` scales per row (axis -1), ``'b'`` per column (axis -2)
        — the orientation that keeps every output dot product on one
        fixed power-of-two scale per slice pair.  Derivation replicates
        :func:`repro.blas.rounding.ozaki_slice_terms` on the exact base
        array the cold path would build, so cached and fresh stacks are
        bitwise identical.
        """
        if operand not in ("a", "b"):
            raise ValueError(f"operand must be 'a' or 'b', got {operand!r}")
        axis = -1 if operand == "a" else -2

        def build():
            if part is None:
                base = self.oriented(trans, np.float32)
            else:
                base = self.part(trans, np.dtype(dtype or np.complex64), part)
            return np.stack(ozaki_slice_terms(base, n_slices, axis=axis))

        return self._derive(("ozaki", trans, n_slices, part, operand), build)

    def efp64_stack(
        self,
        trans: str,
        n_terms: int,
        *,
        part: Optional[str] = None,
        dtype: Optional[np.dtype] = None,
    ) -> np.ndarray:
        """Stacked emulated-FP64 split terms, ``(n_terms, *op_shape)``.

        FP64 operands split into FP32-representable float64 terms
        (:func:`repro.blas.rounding.emulated_fp64_split_terms`); single
        precision degenerates to one exact float64 cast.  ``dtype`` is
        the *working* dtype of the call (real or complex; complex when
        ``part`` selects a component) — it decides whether the base
        array is the FP64 or FP32 packing.
        """
        wdt = np.dtype(dtype or np.float64)
        double = wdt in (np.dtype(np.float64), np.dtype(np.complex128))

        def build():
            if part is None:
                base = self.oriented(trans, np.float64 if double else np.float32)
            else:
                base = self.part(trans, wdt, part)
            return np.stack(emulated_fp64_split_terms(base, n_terms))

        return self._derive(("efp64", trans, n_terms, part, double), build)

    def native_mirror(self, backend, key: tuple, array: np.ndarray):
        """Backend-native copy of a derived NumPy form, cached per backend.

        ``key`` must be the derived form's own cache key; the native
        entry lives under ``("native", backend.cache_key) + key``, so
        (a) a frozen operand is staged onto a device at most once per
        SCF block, and (b) two backends can never alias one cached
        buffer — the cache key *is* the isolation boundary (the same
        invariant the workspace pool enforces, see
        :class:`repro.blas.workspace.Workspace`).  Mirrors are derived
        forms like any other: :meth:`invalidate` drops them with the
        NumPy originals.

        NumPy-native backends short-circuit: the derived form is
        already the native array, so this is one attribute check.
        """
        if backend.capabilities.native_is_numpy:
            return array
        k = ("native", backend.cache_key) + key
        got = self._derived.get(k)
        t = _telemetry_active()
        if got is None:
            if t is not None:
                t.count(
                    "blas.plan.native",
                    result="build",
                    backend=backend.cache_key,
                    site=_current_site_id() or "-",
                )
            got = backend.to_native(array)
            with self._lock:
                got = self._derived.setdefault(k, got)
        elif t is not None:
            t.count(
                "blas.plan.native",
                result="hit",
                backend=backend.cache_key,
                site=_current_site_id() or "-",
            )
        return got

    def is_finite(self) -> bool:
        """Memoised ``np.isfinite(A).all()`` (the opt-in input check)."""
        return self._derive(("finite",), lambda: bool(np.isfinite(self.array).all()))


class OrientedOperand:
    """A ``(plan, trans, dtype)`` handle passed through the compute kernels.

    Thin and ephemeral: it exists so the mode-dispatch code can ask for
    exactly the derived form it needs without knowing whether the
    backing plan is cached or throwaway.
    """

    __slots__ = ("plan", "trans", "dtype")

    def __init__(self, plan: PreparedOperand, trans: str, dtype: np.dtype):
        self.plan = plan
        self.trans = trans
        self.dtype = np.dtype(dtype)

    @property
    def shape(self) -> Tuple[int, ...]:
        return _oriented(self.plan.array, self.trans).shape

    def contiguous(self) -> np.ndarray:
        return self.plan.oriented(self.trans, self.dtype)

    def part(self, which: str) -> np.ndarray:
        return self.plan.part(self.trans, self.dtype, which)

    def split_stack(self, keep_bits: int, n_terms: int, part: Optional[str] = None) -> np.ndarray:
        return self.plan.split_stack(
            self.trans, keep_bits, n_terms, part=part, dtype=self.dtype
        )

    # -- backend-native forms ------------------------------------------
    #
    # Same derived forms, staged into the active backend's array type.
    # For the NumPy backend these return the arrays above unchanged
    # (one capability-flag check); for device backends the plan caches
    # the converted/staged copy per backend (see ``native_mirror``).

    def contiguous_native(self, backend):
        arr = self.contiguous()
        return self.plan.native_mirror(
            backend, ("oriented", self.trans, self.dtype.str), arr
        )

    def part_native(self, backend, which: str):
        arr = self.part(which)
        return self.plan.native_mirror(
            backend, ("part", self.trans, self.dtype.str, which), arr
        )

    def split_stack_native(
        self, backend, keep_bits: int, n_terms: int, part: Optional[str] = None
    ):
        arr = self.split_stack(keep_bits, n_terms, part=part)
        return self.plan.native_mirror(
            backend, ("split", self.trans, keep_bits, n_terms, part), arr
        )

    def ozaki_stack(
        self, n_slices: int, part: Optional[str] = None, operand: str = "a"
    ) -> np.ndarray:
        return self.plan.ozaki_stack(
            self.trans, n_slices, part=part, operand=operand, dtype=self.dtype
        )

    def ozaki_stack_native(
        self, backend, n_slices: int, part: Optional[str] = None, operand: str = "a"
    ):
        arr = self.ozaki_stack(n_slices, part=part, operand=operand)
        return self.plan.native_mirror(
            backend, ("ozaki", self.trans, n_slices, part, operand), arr
        )

    def efp64_stack(self, n_terms: int, part: Optional[str] = None) -> np.ndarray:
        return self.plan.efp64_stack(
            self.trans, n_terms, part=part, dtype=self.dtype
        )

    def efp64_stack_native(self, backend, n_terms: int, part: Optional[str] = None):
        arr = self.efp64_stack(n_terms, part=part)
        double = self.dtype in (np.dtype(np.float64), np.dtype(np.complex128))
        return self.plan.native_mirror(
            backend, ("efp64", self.trans, n_terms, part, double), arr
        )


# ----------------------------------------------------------------------
# Identity registry (explicit prepare()) and anonymous content LRU.
# ----------------------------------------------------------------------

_registry_lock = threading.Lock()
_registry: "OrderedDict[int, PreparedOperand]" = OrderedDict()
_REGISTRY_SIZE = 8

_anon_lock = threading.Lock()
_anon: "OrderedDict[bytes, PreparedOperand]" = OrderedDict()
_anon_enabled = True
_anon_stats = {"hits": 0, "misses": 0}


def prepare(array: Union[np.ndarray, PreparedOperand]) -> PreparedOperand:
    """Return the :class:`PreparedOperand` for ``array``, creating one.

    Identity-keyed: calling ``prepare`` twice on the same live array
    returns the same plan (so separately constructed consumers share
    the cached splits).  The caller owns the freshness contract — call
    :meth:`PreparedOperand.invalidate` (or ``refresh_if_changed``)
    after mutating the array.
    """
    if isinstance(array, PreparedOperand):
        return array
    array = np.asarray(array)
    key = id(array)
    t = _telemetry_active()
    with _registry_lock:
        plan = _registry.get(key)
        if plan is not None and plan.array is array:
            _registry.move_to_end(key)
            if t is not None:
                t.count("blas.plan.prepare", result="hit")
            return plan
        plan = PreparedOperand(array)
        _registry[key] = plan
        if t is not None:
            t.count("blas.plan.prepare", result="miss")
        while len(_registry) > _REGISTRY_SIZE:
            _registry.popitem(last=False)
            if t is not None:
                t.count("blas.plan.registry_evictions")
        return plan


def release(array: Union[np.ndarray, PreparedOperand]) -> None:
    """Drop the registry entry (and cached forms) for ``array``."""
    if isinstance(array, PreparedOperand):
        array.invalidate()
        with _registry_lock:
            for k, v in list(_registry.items()):
                if v is array:
                    del _registry[k]
        return
    with _registry_lock:
        plan = _registry.pop(id(np.asarray(array)), None)
    if plan is not None:
        plan.invalidate()


def lookup_anonymous(array: np.ndarray) -> Optional[PreparedOperand]:
    """Content-keyed LRU lookup for a plain ndarray operand.

    Returns a plan whose wrapped array had byte-identical content, or
    ``None`` when the array is too small / the cache is disabled.  The
    fingerprint is recomputed on every call, so a mutated array can
    never be served stale derived forms.
    """
    if not _anon_enabled or array.nbytes < ANON_MIN_BYTES:
        return None
    fp = _fingerprint_array(array)
    t = _telemetry_active()
    with _anon_lock:
        plan = _anon.get(fp)
        if plan is not None:
            _anon.move_to_end(fp)
            _anon_stats["hits"] += 1
            if t is not None:
                t.count("blas.plan.anon", result="hit")
            return plan
        _anon_stats["misses"] += 1
        if t is not None:
            t.count("blas.plan.anon", result="miss")
        plan = PreparedOperand(array)
        plan._fingerprint = fp
        _anon[fp] = plan
        while len(_anon) > ANON_CACHE_SIZE:
            _anon.popitem(last=False)
            if t is not None:
                t.count("blas.plan.anon_evictions")
    return plan


def plan_cache_enabled() -> bool:
    """Whether the anonymous content-keyed plan cache is active."""
    return _anon_enabled


def set_plan_cache(enabled: bool) -> None:
    """Enable/disable the anonymous plan cache (process-wide)."""
    global _anon_enabled
    _anon_enabled = bool(enabled)
    if not enabled:
        plan_cache_clear()


@contextlib.contextmanager
def plan_cache(enabled: bool) -> Iterator[None]:
    """Scoped toggle of the anonymous plan cache (benchmarks use this
    to time the genuinely cold path)."""
    prev = _anon_enabled
    set_plan_cache(enabled)
    try:
        yield
    finally:
        set_plan_cache(prev)


def plan_cache_clear() -> None:
    """Empty the anonymous plan cache and reset its statistics."""
    with _anon_lock:
        _anon.clear()
        _anon_stats["hits"] = 0
        _anon_stats["misses"] = 0


def plan_cache_info() -> dict:
    """Hit/miss counters and current size of the anonymous cache."""
    with _anon_lock:
        return dict(_anon_stats, size=len(_anon), maxsize=ANON_CACHE_SIZE)


def operand_handle(
    x: Union[np.ndarray, PreparedOperand],
    trans: str,
    dtype: np.dtype,
    *,
    allow_anonymous: bool = True,
) -> OrientedOperand:
    """Build the compute-kernel handle for one operand.

    Prepared operands use their own plan; plain arrays get either an
    anonymous-cache plan (large arrays, content-validated) or a
    throwaway plan — which still pays off *within* the call, because
    the 4M/3M decompositions ask for each part's splits more than once.
    """
    if isinstance(x, PreparedOperand):
        return OrientedOperand(x, trans, dtype)
    x = np.asarray(x)
    plan = lookup_anonymous(x) if allow_anonymous else None
    if plan is None:
        plan = PreparedOperand(x)
    return OrientedOperand(plan, trans, dtype)
