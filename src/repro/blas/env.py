"""Environment-variable plumbing shared by the BLAS and profiling layers.

The paper's whole methodology is environment-variable driven
(``MKL_BLAS_COMPUTE_MODE``, ``MKL_VERBOSE``, ``KMP_BLOCKTIME``); this
module centralises scoped manipulation of those variables so harness
code can reproduce the artifact's run recipes verbatim.
"""

from __future__ import annotations

import contextlib
import os
from typing import Dict, Iterator, Optional

from repro.blas.modes import MKL_COMPUTE_MODE_ENV, ComputeMode
from repro.blas.verbose import MKL_VERBOSE_ENV

__all__ = ["scoped_env", "paper_run_env", "KMP_BLOCKTIME_ENV"]

KMP_BLOCKTIME_ENV = "KMP_BLOCKTIME"


@contextlib.contextmanager
def scoped_env(values: Dict[str, Optional[str]]) -> Iterator[None]:
    """Temporarily set/unset environment variables.

    ``None`` as a value removes the variable for the scope.  Previous
    values are restored on exit even if the body raises.
    """
    saved = {}
    try:
        for key, value in values.items():
            saved[key] = os.environ.get(key)
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
        yield
    finally:
        for key, old in saved.items():
            if old is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = old


def paper_run_env(mode: ComputeMode, verbose: bool = False) -> Dict[str, Optional[str]]:
    """The exact environment the artifact appendix exports per run.

    ``export KMP_BLOCKTIME=0``, optionally ``MKL_VERBOSE=2``, and the
    compute-mode variable (absent for the FP32/FP64 reference runs).
    """
    env: Dict[str, Optional[str]] = {KMP_BLOCKTIME_ENV: "0"}
    env[MKL_VERBOSE_ENV] = "2" if verbose else None
    if mode is ComputeMode.STANDARD:
        env[MKL_COMPUTE_MODE_ENV] = None
    else:
        env[MKL_COMPUTE_MODE_ENV] = mode.env_value
    return env
