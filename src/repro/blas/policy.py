"""Per-call-site compute-mode policies — the paper's future work.

Section IV-D: "because the Intel MKL controls are environment
variables affecting the library as a whole, our study here is limited
to configurations where all BLAS calls are run at the same precision.
The effects of running different BLAS calls at different levels of
precision is left to future work."

The API layer has no such restriction: a :class:`SitePolicy` maps
application call sites (``nlp_prop`` / ``calc_energy`` / ``remap_occ``
— the labels attached by :func:`repro.blas.gemm.call_site`) to compute
modes, so e.g. the state-mutating ``nlp_prop`` can run at BF16x3 while
the observable-only ``remap_occ`` runs at BF16::

    policy = SitePolicy({"nlp_prop": "FLOAT_TO_BF16X3",
                         "remap_occ": "FLOAT_TO_BF16"},
                        default="STANDARD")
    with policy.active():
        sim.run()

Resolution priority (most to least specific): explicit per-call
``mode=`` argument > active site policy > ``compute_mode`` context >
process-wide setting > environment variable.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Dict, Iterator, Optional, Union

from repro.blas.modes import ComputeMode

__all__ = ["SitePolicy", "AdaptiveSitePolicy", "active_policy"]

_state = threading.local()


class SitePolicy:
    """Immutable mapping from call-site labels to compute modes."""

    def __init__(
        self,
        site_modes: Dict[str, Union[str, ComputeMode]],
        default: Union[str, ComputeMode, None] = None,
    ):
        self._modes = {
            str(site): ComputeMode.parse(mode) for site, mode in site_modes.items()
        }
        self._default = None if default is None else ComputeMode.parse(default)

    @property
    def sites(self) -> Dict[str, ComputeMode]:
        return dict(self._modes)

    @property
    def default(self) -> Optional[ComputeMode]:
        return self._default

    def mode_for(self, site: str) -> Optional[ComputeMode]:
        """Mode for a call issued at ``site``; ``None`` = no opinion."""
        if site in self._modes:
            return self._modes[site]
        return self._default

    @contextlib.contextmanager
    def active(self) -> Iterator["SitePolicy"]:
        """Install this policy for the scope (thread-local, nestable)."""
        stack = getattr(_state, "stack", None)
        if stack is None:
            stack = _state.stack = []
        stack.append(self)
        try:
            yield self
        finally:
            stack.pop()

    def __repr__(self) -> str:
        parts = ", ".join(f"{s}={m.env_value}" for s, m in self._modes.items())
        dflt = "" if self._default is None else f", default={self._default.env_value}"
        return f"SitePolicy({parts}{dflt})"


class AdaptiveSitePolicy(SitePolicy):
    """Mutable site policy driven by a controller between steps.

    The GEMM fast path reads the policy once per call
    (``policy.mode_for(site)``), so mutation must be cheap *and* safe
    against concurrent readers.  ``set_mode`` therefore never edits the
    mapping in place — it publishes a fresh dict in one reference
    assignment (atomic under CPython), so a reader observes either the
    old or the new mapping, never a half-written one.  No lock is taken
    on the read path; the write path serialises writers only.

    The controller (:class:`repro.core.scheduler.AdaptiveScheduler`)
    mutates this object only at QD-step / SCF boundaries; the hot loop
    between boundaries sees a frozen mapping.
    """

    def __init__(
        self,
        site_modes: Dict[str, Union[str, ComputeMode]],
        default: Union[str, ComputeMode, None] = None,
    ):
        super().__init__(site_modes, default)
        self._write_lock = threading.Lock()

    def set_mode(self, site: str, mode: Union[str, ComputeMode]) -> None:
        """Publish a new mode for ``site`` (atomic dict replacement)."""
        parsed = ComputeMode.parse(mode)
        with self._write_lock:
            modes = dict(self._modes)
            modes[str(site)] = parsed
            self._modes = modes

    def set_default(self, mode: Union[str, ComputeMode, None]) -> None:
        """Publish a new fallback mode for unmapped sites."""
        with self._write_lock:
            self._default = None if mode is None else ComputeMode.parse(mode)

    def snapshot(self) -> Dict[str, ComputeMode]:
        """Point-in-time copy of the site → mode mapping."""
        return dict(self._modes)

    def __repr__(self) -> str:
        return "Adaptive" + super().__repr__()


def active_policy() -> Optional[SitePolicy]:
    """The innermost installed policy, if any."""
    stack = getattr(_state, "stack", None)
    return stack[-1] if stack else None
