"""Batched GEMM (the ``cblas_?gemm_batch_strided`` family).

oneMKL's alternative compute modes cover the batched level-3 routines
with the same semantics as the single-call ones; DCMESH-like codes use
them for per-atom projector applications and blocked orbital updates.
This entry point mirrors :func:`repro.blas.gemm.gemm` for stacked
operands ``(batch, m, k) @ (batch, k, n)`` — identical mode dispatch,
device-model booking (one launch amortised over the batch) and a
single MKL_VERBOSE record carrying the batch count.
"""

from __future__ import annotations

import time
from typing import Optional, Union

import numpy as np

from repro.blas.complex3m import gemm_3m, gemm_4m
from repro.blas.gemm import _compute, _current_site, _routine_name, _working_dtype, current_device
from repro.blas.modes import ComputeMode, resolve_mode
from repro.blas.verbose import VerboseRecord, record_call, verbose_enabled

__all__ = ["gemm_batch"]


def _apply_trans_batched(x: np.ndarray, trans: str) -> np.ndarray:
    if trans == "N":
        return x
    if trans == "T":
        return np.swapaxes(x, -1, -2)
    if trans == "C":
        out = np.swapaxes(x, -1, -2)
        return out.conj() if np.iscomplexobj(out) else out
    raise ValueError(f"trans must be 'N', 'T' or 'C', got {trans!r}")


def gemm_batch(
    a: np.ndarray,
    b: np.ndarray,
    *,
    alpha: Union[float, complex] = 1.0,
    trans_a: str = "N",
    trans_b: str = "N",
    mode: Union[str, ComputeMode, None] = None,
) -> np.ndarray:
    """Batched matrix multiply: ``out[i] = alpha * op(A[i]) @ op(B[i])``.

    Parameters
    ----------
    a, b:
        3-D stacks with matching leading (batch) dimension.
    alpha, trans_a, trans_b, mode:
        As in :func:`repro.blas.gemm.gemm`.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if a.ndim != 3 or b.ndim != 3:
        raise ValueError(
            f"gemm_batch requires 3-D stacks, got {a.ndim}-D and {b.ndim}-D"
        )
    if a.shape[0] != b.shape[0]:
        raise ValueError(
            f"batch dimensions differ: {a.shape[0]} vs {b.shape[0]}"
        )
    if not np.isfinite(a).all() or not np.isfinite(b).all():
        raise FloatingPointError("gemm_batch received non-finite input")

    dtype = _working_dtype(a, b)
    op_a = _apply_trans_batched(a.astype(dtype, copy=False), trans_a)
    op_b = _apply_trans_batched(b.astype(dtype, copy=False), trans_b)
    if op_a.shape[-1] != op_b.shape[-2]:
        raise ValueError(
            f"inner dimensions differ: op(A) {op_a.shape} @ op(B) {op_b.shape}"
        )
    batch, m, k = op_a.shape
    n = op_b.shape[-1]
    effective = resolve_mode(mode)
    routine = _routine_name(dtype)

    t0 = time.perf_counter()
    out = _compute(op_a, op_b, effective, dtype)
    wall = time.perf_counter() - t0
    if alpha != 1.0:
        out = (alpha * out).astype(dtype, copy=False)

    device = current_device()
    model_seconds = None
    if device is not None:
        model_seconds = device.record_gemm_batch(
            routine=routine, m=m, n=n, k=k, batch=batch,
            mode=effective, site=_current_site(),
        )
    if verbose_enabled():
        record_call(
            VerboseRecord(
                routine=routine,
                trans_a=trans_a,
                trans_b=trans_b,
                m=m,
                n=n,
                k=k,
                mode=effective,
                seconds=wall,
                model_seconds=model_seconds,
                site=_current_site(),
                batch=batch,
            )
        )
    return out
