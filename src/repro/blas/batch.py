"""Batched GEMM (the ``cblas_?gemm_batch_strided`` family).

oneMKL's alternative compute modes cover the batched level-3 routines
with the same semantics as the single-call ones; DCMESH-like codes use
them for per-atom projector applications and blocked orbital updates.
This entry point mirrors :func:`repro.blas.gemm.gemm` for stacked
operands ``(batch, m, k) @ (batch, k, n)`` — identical mode dispatch,
device-model booking (one launch amortised over the batch) and a
single MKL_VERBOSE record carrying the batch count.
"""

from __future__ import annotations

import time
from typing import Union

import numpy as np

from repro.blas import backend as _backend
from repro.blas.gemm import (
    _anon_worth_it,
    _assert_finite,
    _compute,
    _current_site,
    _routine_name,
    _working_dtype,
    current_device,
    finite_checks_enabled,
)
from repro.blas.modes import ComputeMode, resolve_mode
from repro.blas.plan import PreparedOperand, operand_handle
from repro.blas.verbose import VerboseRecord, emit_call, observing
from repro.telemetry.provenance import register_call_site, site_scope
from repro.telemetry.registry import active as _telemetry_active

__all__ = ["gemm_batch"]


def gemm_batch(
    a: np.ndarray,
    b: np.ndarray,
    *,
    alpha: Union[float, complex] = 1.0,
    trans_a: str = "N",
    trans_b: str = "N",
    mode: Union[str, ComputeMode, None] = None,
) -> np.ndarray:
    """Batched matrix multiply: ``out[i] = alpha * op(A[i]) @ op(B[i])``.

    Parameters
    ----------
    a, b:
        3-D stacks with matching leading (batch) dimension.
    alpha, trans_a, trans_b, mode:
        As in :func:`repro.blas.gemm.gemm`.
    """
    a_plan = a if isinstance(a, PreparedOperand) else None
    b_plan = b if isinstance(b, PreparedOperand) else None
    a_arr = a_plan.array if a_plan is not None else np.asarray(a)
    b_arr = b_plan.array if b_plan is not None else np.asarray(b)
    if a_arr.ndim != 3 or b_arr.ndim != 3:
        raise ValueError(
            f"gemm_batch requires 3-D stacks, got {a_arr.ndim}-D and {b_arr.ndim}-D"
        )
    if a_arr.shape[0] != b_arr.shape[0]:
        raise ValueError(
            f"batch dimensions differ: {a_arr.shape[0]} vs {b_arr.shape[0]}"
        )
    if finite_checks_enabled():
        _assert_finite("gemm_batch", a_arr, b_arr, a_plan, b_plan)

    dtype = _working_dtype(a_arr, b_arr)
    effective = resolve_mode(mode)
    routine = _routine_name(dtype)
    anon = _anon_worth_it(effective, dtype)
    a_h = operand_handle(
        a_plan if a_plan is not None else a_arr, trans_a, dtype, allow_anonymous=anon
    )
    b_h = operand_handle(
        b_plan if b_plan is not None else b_arr, trans_b, dtype, allow_anonymous=anon
    )
    if a_h.shape[-1] != b_h.shape[-2]:
        raise ValueError(
            f"inner dimensions differ: op(A) {a_h.shape} @ op(B) {b_h.shape}"
        )
    batch, m, k = a_h.shape
    n = b_h.shape[-1]

    site_id = ""
    if _telemetry_active() is not None:
        site_id = register_call_site(
            _current_site() or "-", "gemm_batch", routine, m, n, k, batch
        )

    be = _backend.active_backend()
    t0 = time.perf_counter()
    if site_id:
        with site_scope(site_id):
            out = _compute(a_h, b_h, effective, dtype, be)
    else:
        out = _compute(a_h, b_h, effective, dtype, be)
    wall = time.perf_counter() - t0
    if alpha != 1.0:
        out = (alpha * out).astype(dtype, copy=False)

    device = current_device()
    model_seconds = None
    if device is not None:
        model_seconds = device.record_gemm_batch(
            routine=routine, m=m, n=n, k=k, batch=batch,
            mode=effective, site=_current_site(),
        )
    if observing():
        emit_call(
            VerboseRecord(
                routine=routine,
                trans_a=trans_a,
                trans_b=trans_b,
                m=m,
                n=n,
                k=k,
                mode=effective,
                seconds=wall,
                model_seconds=model_seconds,
                site=_current_site(),
                batch=batch,
                site_id=site_id,
                backend=be.cache_key,
            )
        )
    return out
