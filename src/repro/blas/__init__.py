"""Software emulation of Intel oneMKL *alternative compute modes* for BLAS.

The paper enables the modes purely through the environment variable
``MKL_BLAS_COMPUTE_MODE`` — "no source code changes" — and this package
honours the same contract: every GEMM entry point consults the variable
(or an explicit override) and internally rounds/splits its FP32 inputs
exactly the way oneMKL describes:

* ``FLOAT_TO_BF16`` — round inputs to BF16 (round-to-nearest-even),
  multiply the BF16 component matrices on the (emulated) systolic
  array, accumulate in FP32.
* ``FLOAT_TO_BF16X2`` / ``FLOAT_TO_BF16X3`` — decompose each FP32 input
  into a sum of 2 / 3 BF16 values and accumulate the 3 / 6 cheapest
  component products in FP32.
* ``FLOAT_TO_TF32`` — like BF16 with TF32 (10 mantissa bits) instead.
* ``COMPLEX_3M`` — 3-multiplication complex matrix multiply
  (Karatsuba-style), trading one real GEMM for extra additions.

Because a BF16 x BF16 (or TF32 x TF32) product is exact in FP32
arithmetic (8x8 -> 16 and 11x11 -> 22 significant bits, both under
FP32's 24), an FP32 matmul over rounded inputs reproduces the XMX
numerics exactly up to accumulation order.
"""

from repro.blas.backend import (
    ArrayBackend,
    BackendCapabilities,
    BackendUnavailable,
    NumpyBackend,
    REPRO_BACKEND_ENV,
    active_backend,
    available_backends,
    get_backend,
    register_backend,
    set_backend,
    use_backend,
)
from repro.blas.modes import (
    ComputeMode,
    MKL_COMPUTE_MODE_ENV,
    compute_mode,
    get_compute_mode,
    resolve_mode,
    set_compute_mode,
)
from repro.blas.rounding import (
    round_fp32_to_bf16,
    round_fp32_to_tf32,
    round_mantissa,
    split_bf16,
    split_tf32,
)
from repro.blas.gemm import (
    gemm,
    sgemm,
    dgemm,
    cgemm,
    zgemm,
    check_finite,
    finite_checks,
    finite_checks_enabled,
)
from repro.blas.batch import gemm_batch
from repro.blas.complex3m import gemm_3m
from repro.blas.plan import (
    PreparedOperand,
    plan_cache,
    plan_cache_clear,
    plan_cache_info,
    prepare,
    release,
    set_plan_cache,
)
from repro.blas.workspace import clear_workspace, fused_mode, set_fused_mode
from repro.blas.level1 import axpy, dotc, nrm2, scal
from repro.blas.policy import SitePolicy, active_policy
from repro.blas.verbose import (
    VerboseRecord,
    get_verbose_log,
    mkl_verbose,
    verbose_enabled,
)

__all__ = [
    "ArrayBackend",
    "BackendCapabilities",
    "BackendUnavailable",
    "NumpyBackend",
    "REPRO_BACKEND_ENV",
    "active_backend",
    "available_backends",
    "get_backend",
    "register_backend",
    "set_backend",
    "use_backend",
    "ComputeMode",
    "MKL_COMPUTE_MODE_ENV",
    "compute_mode",
    "get_compute_mode",
    "resolve_mode",
    "set_compute_mode",
    "round_fp32_to_bf16",
    "round_fp32_to_tf32",
    "round_mantissa",
    "split_bf16",
    "split_tf32",
    "gemm",
    "gemm_batch",
    "sgemm",
    "dgemm",
    "cgemm",
    "zgemm",
    "gemm_3m",
    "check_finite",
    "finite_checks",
    "finite_checks_enabled",
    "PreparedOperand",
    "prepare",
    "release",
    "plan_cache",
    "plan_cache_clear",
    "plan_cache_info",
    "set_plan_cache",
    "clear_workspace",
    "fused_mode",
    "set_fused_mode",
    "SitePolicy",
    "active_policy",
    "axpy",
    "dotc",
    "nrm2",
    "scal",
    "VerboseRecord",
    "get_verbose_log",
    "mkl_verbose",
    "verbose_enabled",
]
