"""Split-precision real GEMM engines (BF16x{1,2,3}, TF32).

Each FP32 input matrix is decomposed into ``n`` reduced-precision
terms (:func:`repro.blas.rounding.split_terms`); the component product
matrices are then multiplied with FP32 accumulation — exactly what the
XMX systolic arrays do — and summed most-significant-first.

Component selection: for an ``n``-term split of both inputs oneMKL
computes the pairs ``(i, j)`` with ``i + j <= n + 1``.  Pairs beyond
that contribute below the final rounding error (each term is ~``2^-8``
of the previous for BF16), so skipping them preserves accuracy while
keeping the cost at ``n(n+1)/2`` products — the source of Table II's
peak speedups (16x, 16/3x, 8/3x for x1/x2/x3).

A BF16 x BF16 product (8 x 8 significant bits) and a TF32 x TF32
product (11 x 11) are both exact in FP32, so ``np.matmul`` on float32
component matrices is a *bit-exact* emulation of the hardware's
multiply stage; only the accumulation order may differ, which is the
same freedom any BLAS implementation has.
"""

from __future__ import annotations

import numpy as np

from repro.blas.rounding import (
    emulated_fp64_split_terms,
    ozaki_slice_terms,
    split_terms,
)
from repro.types import MANTISSA_BITS, Precision

__all__ = [
    "split_gemm_real",
    "split_gemm_reference",
    "component_pairs",
    "ozaki_gemm_reference",
    "emulated_fp64_gemm_reference",
    "emulated_fp64_term_count",
]


def component_pairs(n_terms: int):
    """Ordered component-product index pairs for an ``n_terms`` split.

    Pairs ``(i, j)`` (1-based) with ``i + j <= n_terms + 1``, ordered by
    significance (ascending ``i + j``) so accumulation adds the most
    significant contributions first.
    """
    pairs = [
        (i, j)
        for i in range(1, n_terms + 1)
        for j in range(1, n_terms + 1)
        if i + j <= n_terms + 1
    ]
    pairs.sort(key=lambda ij: (ij[0] + ij[1], ij[0]))
    return pairs


def split_gemm_real(
    a: np.ndarray,
    b: np.ndarray,
    precision: Precision,
    n_terms: int,
) -> np.ndarray:
    """Compute ``a @ b`` with split-precision inputs, FP32 accumulation.

    Routed through the split-plan layer: operand splits are cached
    (:mod:`repro.blas.plan`) and the component products run on the
    fused engine (:mod:`repro.blas.workspace`) under the ambient
    :func:`repro.blas.backend.active_backend`.  Results are bitwise
    identical to :func:`split_gemm_reference` on the NumPy backend;
    other backends carry the documented tolerance contracts
    (docs/BACKENDS.md).

    Parameters
    ----------
    a, b:
        Real FP32 operands with matmul-compatible shapes: plain 2-D
        matrices or stacked batches ``(..., m, k) @ (..., k, n)`` (the
        ``gemm_batch`` case), already in the orientation to be
        multiplied (any transposition resolved by the caller).  Either
        may be a :class:`repro.blas.plan.PreparedOperand` wrapping such
        an array.
    precision:
        Component format (``Precision.BF16`` or ``Precision.TF32``).
    n_terms:
        Number of split terms per input (1, 2 or 3 in oneMKL).
    """
    from repro.blas.plan import operand_handle
    from repro.blas.workspace import split_gemm_fused

    a_arr = a.array if hasattr(a, "array") else np.asarray(a)
    b_arr = b.array if hasattr(b, "array") else np.asarray(b)
    if a_arr.ndim < 2 or b_arr.ndim < 2:
        raise ValueError(
            f"split_gemm_real needs >= 2-D inputs, got {a_arr.ndim}-D and {b_arr.ndim}-D"
        )
    if a_arr.shape[-1] != b_arr.shape[-2]:
        raise ValueError(f"inner dimensions differ: {a_arr.shape} @ {b_arr.shape}")
    a_h = operand_handle(a, "N", np.float32)
    b_h = operand_handle(b, "N", np.float32)
    return split_gemm_fused(a_h, b_h, precision, n_terms)


def split_gemm_reference(
    a: np.ndarray,
    b: np.ndarray,
    precision: Precision,
    n_terms: int,
) -> np.ndarray:
    """Naive reference engine: per-pair matmuls with fresh temporaries.

    This is the original (pre-plan) implementation, kept as the golden
    oracle: :func:`split_gemm_real`'s fused/cached path must match it
    *bitwise* for all inputs (see the property tests).  It is pure
    NumPy *on purpose* — the oracle must stay backend-independent, so
    it never consults :mod:`repro.blas.backend`.
    """
    if a.ndim < 2 or b.ndim < 2:
        raise ValueError(
            f"split_gemm_reference needs >= 2-D inputs, got {a.ndim}-D and {b.ndim}-D"
        )
    if a.shape[-1] != b.shape[-2]:
        raise ValueError(f"inner dimensions differ: {a.shape} @ {b.shape}")
    keep = MANTISSA_BITS[precision]
    a_terms = split_terms(a, keep, n_terms)
    b_terms = split_terms(b, keep, n_terms)
    out = None
    for i, j in component_pairs(n_terms):
        # float32 matmul == exact component products + FP32 accumulate.
        prod = np.matmul(a_terms[i - 1], b_terms[j - 1])
        out = prod if out is None else out + prod
    return out


def _check_shapes(name: str, a: np.ndarray, b: np.ndarray) -> None:
    if a.ndim < 2 or b.ndim < 2:
        raise ValueError(f"{name} needs >= 2-D inputs, got {a.ndim}-D and {b.ndim}-D")
    if a.shape[-1] != b.shape[-2]:
        raise ValueError(f"inner dimensions differ: {a.shape} @ {b.shape}")


def ozaki_gemm_reference(a: np.ndarray, b: np.ndarray, n_slices: int) -> np.ndarray:
    """Naive Ozaki-scheme INT8 split GEMM (golden oracle, pure NumPy).

    Each operand is decomposed into ``n_slices`` scaled-INT8 slice
    terms along its contraction axis
    (:func:`repro.blas.rounding.ozaki_slice_terms`); the slice-pair
    products — float64 matmuls that *exactly* emulate INT8 multiplies
    with INT32 accumulation, because every product is an integer times
    a shared power-of-two scale — are rescaled and summed
    most-significant-first over the ``i + j <= n_slices + 1`` pair set,
    then rounded once to FP32.  The fused/plan-cached path must match
    this bitwise (same decomposition, same pair order, same final
    cast).
    """
    _check_shapes("ozaki_gemm_reference", a, b)
    a_terms = ozaki_slice_terms(a, n_slices, axis=-1)
    b_terms = ozaki_slice_terms(b, n_slices, axis=-2)
    out = None
    for i, j in component_pairs(n_slices):
        prod = np.matmul(a_terms[i - 1], b_terms[j - 1])
        out = prod if out is None else out + prod
    return out.astype(np.float32)


def emulated_fp64_term_count(dtype) -> int:
    """Split terms the ``EMULATED_FP64`` mode uses for this storage.

    FP64 operands need three FP32 terms (72 > 53 significand bits);
    FP32 operands are already exactly representable as a single term,
    so the mode degenerates to one FP64-accumulated FP32 product — the
    cheapest arithmetic that still beats FP32 accumulation.
    """
    return 3 if np.dtype(dtype) in (np.dtype(np.float64), np.dtype(np.complex128)) else 1


def emulated_fp64_gemm_reference(
    a: np.ndarray, b: np.ndarray, n_terms: int = None
) -> np.ndarray:
    """Naive emulated-FP64 GEMM (golden oracle, pure NumPy).

    Operands are split into FP32-representable terms
    (:func:`repro.blas.rounding.emulated_fp64_split_terms`); each term
    pair with ``i + j <= n_terms + 1`` is multiplied under float64
    matmul (FP32 x FP32 products are exact; accumulation is FP64 — the
    compensated-accumulation stage) and summed most-significant-first.
    The result keeps the input's real dtype: FP64 in, FP64-grade out;
    FP32 in, an FP64-accumulated product rounded once at the end.
    """
    _check_shapes("emulated_fp64_gemm_reference", a, b)
    if n_terms is None:
        n_terms = emulated_fp64_term_count(a.dtype)
    a_terms = emulated_fp64_split_terms(a, n_terms)
    b_terms = emulated_fp64_split_terms(b, n_terms)
    out = None
    for i, j in component_pairs(n_terms):
        prod = np.matmul(a_terms[i - 1], b_terms[j - 1])
        out = prod if out is None else out + prod
    rdt = np.float64 if np.dtype(a.dtype) == np.dtype(np.float64) else np.float32
    return out.astype(rdt)
