"""Compute-mode vocabulary and selection, mirroring oneMKL's contract.

oneMKL enables alternative compute modes either through dedicated APIs
or the ``MKL_BLAS_COMPUTE_MODE`` environment variable; the paper relies
exclusively on the environment variable so that *no source change* is
needed.  We reproduce both paths:

* environment: ``MKL_BLAS_COMPUTE_MODE=FLOAT_TO_BF16`` etc., consulted
  on every call (lowest priority);
* API: :func:`set_compute_mode` (process-wide) and
  :func:`compute_mode` (scoped context manager), which take precedence
  over the environment;
* per-call: an explicit ``mode=`` argument to the GEMM entry points,
  which wins over everything (the paper leaves per-call mixing to
  future work because the env var is global; the API layer here has no
  such restriction).
"""

from __future__ import annotations

import contextlib
import enum
import os
import threading
from typing import Iterator, Optional, Union

from repro.types import Precision

__all__ = [
    "ComputeMode",
    "MKL_COMPUTE_MODE_ENV",
    "OZAKI_SLICES_ENV",
    "UnknownComputeModeError",
    "resolve_mode",
    "get_compute_mode",
    "set_compute_mode",
    "compute_mode",
    "mode_from_env",
    "get_ozaki_slices",
    "set_ozaki_slices",
]

#: The environment variable the paper sets before each run.
MKL_COMPUTE_MODE_ENV = "MKL_BLAS_COMPUTE_MODE"

#: Slice count of the ``OZAKI_INT8`` split (default 3); consulted on
#: every call like the mode variable itself, so a sweep can vary it
#: without source changes.
OZAKI_SLICES_ENV = "REPRO_OZAKI_SLICES"

#: Largest accepted slice count.  Eight 7-bit slices already carry 56
#: significant bits — beyond FP32 storage can even express — and the
#: exactness argument (integer dot products below 2**53) wants the
#: per-slice scale gaps bounded.
_MAX_OZAKI_SLICES = 8

_ozaki_slices_override: Optional[int] = None


def _validate_slices(n: int) -> int:
    n = int(n)
    if not 1 <= n <= _MAX_OZAKI_SLICES:
        raise ValueError(
            f"ozaki slice count must be in [1, {_MAX_OZAKI_SLICES}], got {n}"
        )
    return n


def get_ozaki_slices(environ=None) -> int:
    """Effective ``OZAKI_INT8`` slice count (API > env > default 3)."""
    if _ozaki_slices_override is not None:
        return _ozaki_slices_override
    env = os.environ if environ is None else environ
    raw = env.get(OZAKI_SLICES_ENV)
    if raw is None or not str(raw).strip():
        return 3
    try:
        return _validate_slices(raw)
    except (TypeError, ValueError):
        raise ValueError(
            f"{OZAKI_SLICES_ENV} must be an integer in "
            f"[1, {_MAX_OZAKI_SLICES}], got {raw!r}"
        ) from None


def set_ozaki_slices(n: Optional[int]) -> None:
    """Set (or clear, with ``None``) the process-wide slice count."""
    global _ozaki_slices_override
    _ozaki_slices_override = None if n is None else _validate_slices(n)


class UnknownComputeModeError(ValueError):
    """Raised when an environment value or mode string is not recognised."""


class ComputeMode(enum.Enum):
    """oneMKL alternative compute modes studied in the paper (Table II).

    ``STANDARD`` is MKL's default — no alternative mode, i.e. plain
    FP32 (or FP64) arithmetic on the vector engines.
    """

    STANDARD = "STANDARD"
    FLOAT_TO_BF16 = "FLOAT_TO_BF16"
    FLOAT_TO_BF16X2 = "FLOAT_TO_BF16X2"
    FLOAT_TO_BF16X3 = "FLOAT_TO_BF16X3"
    FLOAT_TO_TF32 = "FLOAT_TO_TF32"
    COMPLEX_3M = "COMPLEX_3M"
    # Post-paper rungs of the same split-accumulate ladder: per-slice
    # scaled INT8 split GEMM with exact integer accumulation (Ozaki
    # scheme), and multi-term FP32 splitting of FP64 operands with
    # compensated accumulation (emulated FP64).
    OZAKI_INT8 = "OZAKI_INT8"
    EMULATED_FP64 = "EMULATED_FP64"

    # ------------------------------------------------------------------
    # Structural properties used by the numerics and the device model.
    # ------------------------------------------------------------------

    @property
    def env_value(self) -> str:
        """The string assigned to ``MKL_BLAS_COMPUTE_MODE``."""
        return self.value

    @property
    def is_low_precision(self) -> bool:
        """Whether inputs are rounded below FP32 before multiplying."""
        return self in (
            ComputeMode.FLOAT_TO_BF16,
            ComputeMode.FLOAT_TO_BF16X2,
            ComputeMode.FLOAT_TO_BF16X3,
            ComputeMode.FLOAT_TO_TF32,
        )

    @property
    def uses_int8(self) -> bool:
        """Whether the multiply stage runs on INT8 engines (Ozaki split)."""
        return self is ComputeMode.OZAKI_INT8

    @property
    def uses_fp64_emulation(self) -> bool:
        """Whether FP64-grade results are built from FP32-term products."""
        return self is ComputeMode.EMULATED_FP64

    @property
    def component_precision(self) -> Optional[Precision]:
        """Format of the multiply-stage components, or ``None``."""
        if self in (
            ComputeMode.FLOAT_TO_BF16,
            ComputeMode.FLOAT_TO_BF16X2,
            ComputeMode.FLOAT_TO_BF16X3,
        ):
            return Precision.BF16
        if self is ComputeMode.FLOAT_TO_TF32:
            return Precision.TF32
        if self is ComputeMode.OZAKI_INT8:
            return Precision.INT8
        if self is ComputeMode.EMULATED_FP64:
            return Precision.FP32
        return None

    @property
    def n_terms(self) -> int:
        """Number of reduced-precision terms each input is split into.

        ``OZAKI_INT8`` is configurable (:func:`get_ozaki_slices`);
        ``EMULATED_FP64`` reports its FP64-operand term count (3 FP32
        terms carry all 53 significand bits) — single-precision routines
        need only one FP64-accumulated term, resolved at dispatch.
        """
        if self is ComputeMode.OZAKI_INT8:
            return get_ozaki_slices()
        return {
            ComputeMode.FLOAT_TO_BF16: 1,
            ComputeMode.FLOAT_TO_BF16X2: 2,
            ComputeMode.FLOAT_TO_BF16X3: 3,
            ComputeMode.FLOAT_TO_TF32: 1,
            ComputeMode.EMULATED_FP64: 3,
        }.get(self, 1)

    @property
    def n_component_products(self) -> int:
        """Real component GEMMs per logical real GEMM.

        With an ``n``-term split, oneMKL multiplies the component pairs
        ``(i, j)`` with ``i + j <= n + 1`` (the cheapest set that keeps
        the result error at the ``O(2^-8n)`` level): 1 product for x1,
        3 for x2, 6 for x3.  This is what makes the peak theoretical
        speedups in Table II 16x, (16/3)x and (8/3)x.
        """
        n = self.n_terms
        return n * (n + 1) // 2

    @property
    def uses_3m(self) -> bool:
        """Whether complex GEMMs use the 3-multiplication algorithm."""
        return self is ComputeMode.COMPLEX_3M

    @classmethod
    def parse(cls, value: Union[str, "ComputeMode", None]) -> "ComputeMode":
        """Parse a mode from a string (case-insensitive) or pass through."""
        if value is None:
            return cls.STANDARD
        if isinstance(value, cls):
            return value
        key = str(value).strip().upper()
        if not key:
            return cls.STANDARD
        # Accept both the env spelling and a few obvious aliases.
        aliases = {
            "FP32": "STANDARD",
            "DEFAULT": "STANDARD",
            "BF16": "FLOAT_TO_BF16",
            "BF16X2": "FLOAT_TO_BF16X2",
            "BF16X3": "FLOAT_TO_BF16X3",
            "TF32": "FLOAT_TO_TF32",
            "3M": "COMPLEX_3M",
            "OZAKI": "OZAKI_INT8",
            "INT8": "OZAKI_INT8",
            "EMU_FP64": "EMULATED_FP64",
            "EFP64": "EMULATED_FP64",
        }
        # Normalise separators so OZAKI-INT8 / "emulated fp64" parse too.
        key = key.replace("-", "_").replace(" ", "_")
        key = aliases.get(key, key)
        try:
            return cls[key]
        except KeyError:
            valid = ", ".join(m.value for m in cls)
            raise UnknownComputeModeError(
                f"unknown compute mode {value!r}; valid values: {valid}"
            ) from None


# ----------------------------------------------------------------------
# Selection machinery: per-call > scoped/global API > environment.
# ----------------------------------------------------------------------

_state = threading.local()
_global_mode: Optional[ComputeMode] = None
_global_lock = threading.Lock()


def mode_from_env(environ=None) -> Optional[ComputeMode]:
    """Read ``MKL_BLAS_COMPUTE_MODE``; ``None`` when unset/empty."""
    env = os.environ if environ is None else environ
    raw = env.get(MKL_COMPUTE_MODE_ENV)
    if raw is None or not raw.strip():
        return None
    return ComputeMode.parse(raw)


def set_compute_mode(mode: Union[str, ComputeMode, None]) -> None:
    """Set (or clear, with ``None``) the process-wide compute mode."""
    global _global_mode
    with _global_lock:
        _global_mode = None if mode is None else ComputeMode.parse(mode)


def get_compute_mode() -> ComputeMode:
    """Mode that a BLAS call issued right now would run under."""
    return resolve_mode(None)


def resolve_mode(explicit: Union[str, ComputeMode, None]) -> ComputeMode:
    """Resolve the effective mode for one BLAS call.

    Priority: explicit per-call argument, then the innermost active
    :func:`compute_mode` context, then :func:`set_compute_mode`, then
    the environment variable, then ``STANDARD``.
    """
    if explicit is not None:
        return ComputeMode.parse(explicit)
    stack = getattr(_state, "stack", None)
    if stack:
        return stack[-1]
    if _global_mode is not None:
        return _global_mode
    env = mode_from_env()
    if env is not None:
        return env
    return ComputeMode.STANDARD


@contextlib.contextmanager
def compute_mode(mode: Union[str, ComputeMode]) -> Iterator[ComputeMode]:
    """Scoped compute-mode override (thread-local, re-entrant).

    >>> with compute_mode("FLOAT_TO_BF16"):
    ...     C = cgemm(A, B)          # runs in BF16 mode
    """
    parsed = ComputeMode.parse(mode)
    stack = getattr(_state, "stack", None)
    if stack is None:
        stack = _state.stack = []
    stack.append(parsed)
    try:
        yield parsed
    finally:
        stack.pop()
