"""Minimal level-1 BLAS helpers used by the DCMESH substrate.

These are *not* mode-sensitive (oneMKL's alternative compute modes
apply to level-3 routines only — the paper, Section III-B); they exist
so the application layer reads like code written against a BLAS and so
the profiling layer can account for their bandwidth cost.

Backend routing: every routine here deliberately stays host-side
NumPy under an offload backend.  They are O(n) bandwidth-bound touches
of arrays that live in host memory, where staging onto a device costs
more than the operation — and the convergence checks built on
``nrm2``/``asum`` must not shift with a device's different summation
order.  The sum-reductions fold through the active
:class:`~repro.blas.backend.ArrayBackend`'s ``reduce`` only when its
native arrays *are* ndarrays (the literal ``np.sum`` the code always
ran, bit for bit); otherwise they use ``np.sum`` directly (see
docs/BACKENDS.md, "What is offloaded").
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.blas import backend as _backend

__all__ = ["axpy", "dotc", "dotu", "nrm2", "scal", "asum"]

Scalar = Union[float, complex]


def axpy(alpha: Scalar, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """``y <- alpha * x + y`` (returns the updated ``y``, in place)."""
    x = np.asarray(x)
    if x.shape != y.shape:
        raise ValueError(f"axpy shape mismatch: {x.shape} vs {y.shape}")
    y += np.asarray(alpha * x, dtype=y.dtype)
    return y


def dotc(x: np.ndarray, y: np.ndarray) -> Scalar:
    """Conjugated dot product ``x^H y`` (cdotc/zdotc)."""
    x = np.asarray(x)
    y = np.asarray(y)
    if x.shape != y.shape:
        raise ValueError(f"dotc shape mismatch: {x.shape} vs {y.shape}")
    return complex(np.vdot(x, y)) if np.iscomplexobj(x) or np.iscomplexobj(y) else float(np.dot(x, y))


def dotu(x: np.ndarray, y: np.ndarray) -> Scalar:
    """Unconjugated dot product ``x^T y`` (cdotu/zdotu)."""
    x = np.asarray(x).ravel()
    y = np.asarray(y).ravel()
    if x.shape != y.shape:
        raise ValueError(f"dotu shape mismatch: {x.shape} vs {y.shape}")
    out = np.dot(x, y)
    return complex(out) if np.iscomplexobj(out) else float(out)


def _reduce_sum(x: np.ndarray) -> float:
    """Total of a real host array, kept host-side under offload.

    ``x`` is always a freshly computed host ndarray, so routing it
    through a device backend would pay a host-to-device transfer for a
    bandwidth-bound O(n) fold *and* change the summation order feeding
    convergence checks.  Only NumPy-native backends (whose ``reduce``
    is ``np.sum``) take the dispatch path.
    """
    be = _backend.active_backend()
    if be.capabilities.native_is_numpy:
        return float(be.reduce(x))
    return float(np.sum(x))


def nrm2(x: np.ndarray) -> float:
    """Euclidean norm, accumulated in FP64 for stability (as LAPACK does)."""
    x = np.asarray(x).ravel()
    sq = np.abs(x.astype(np.complex128 if np.iscomplexobj(x) else np.float64)) ** 2
    return float(np.sqrt(_reduce_sum(sq)))


def scal(alpha: Scalar, x: np.ndarray) -> np.ndarray:
    """``x <- alpha * x`` in place."""
    x *= np.asarray(alpha, dtype=x.dtype)
    return x


def asum(x: np.ndarray) -> float:
    """Sum of absolute values (|real| + |imag| for complex, as BLAS does)."""
    x = np.asarray(x).ravel()
    if np.iscomplexobj(x):
        return _reduce_sum(np.abs(x.real)) + _reduce_sum(np.abs(x.imag))
    return _reduce_sum(np.abs(x))
