"""Minimal level-1 BLAS helpers used by the DCMESH substrate.

These are *not* mode-sensitive (oneMKL's alternative compute modes
apply to level-3 routines only — the paper, Section III-B); they exist
so the application layer reads like code written against a BLAS and so
the profiling layer can account for their bandwidth cost.
"""

from __future__ import annotations

from typing import Union

import numpy as np

__all__ = ["axpy", "dotc", "dotu", "nrm2", "scal", "asum"]

Scalar = Union[float, complex]


def axpy(alpha: Scalar, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """``y <- alpha * x + y`` (returns the updated ``y``, in place)."""
    x = np.asarray(x)
    if x.shape != y.shape:
        raise ValueError(f"axpy shape mismatch: {x.shape} vs {y.shape}")
    y += np.asarray(alpha * x, dtype=y.dtype)
    return y


def dotc(x: np.ndarray, y: np.ndarray) -> Scalar:
    """Conjugated dot product ``x^H y`` (cdotc/zdotc)."""
    x = np.asarray(x)
    y = np.asarray(y)
    if x.shape != y.shape:
        raise ValueError(f"dotc shape mismatch: {x.shape} vs {y.shape}")
    return complex(np.vdot(x, y)) if np.iscomplexobj(x) or np.iscomplexobj(y) else float(np.dot(x, y))


def dotu(x: np.ndarray, y: np.ndarray) -> Scalar:
    """Unconjugated dot product ``x^T y`` (cdotu/zdotu)."""
    x = np.asarray(x).ravel()
    y = np.asarray(y).ravel()
    if x.shape != y.shape:
        raise ValueError(f"dotu shape mismatch: {x.shape} vs {y.shape}")
    out = np.dot(x, y)
    return complex(out) if np.iscomplexobj(out) else float(out)


def nrm2(x: np.ndarray) -> float:
    """Euclidean norm, accumulated in FP64 for stability (as LAPACK does)."""
    x = np.asarray(x).ravel()
    return float(np.sqrt(np.sum(np.abs(x.astype(np.complex128 if np.iscomplexobj(x) else np.float64)) ** 2)))


def scal(alpha: Scalar, x: np.ndarray) -> np.ndarray:
    """``x <- alpha * x`` in place."""
    x *= np.asarray(alpha, dtype=x.dtype)
    return x


def asum(x: np.ndarray) -> float:
    """Sum of absolute values (|real| + |imag| for complex, as BLAS does)."""
    x = np.asarray(x).ravel()
    if np.iscomplexobj(x):
        return float(np.sum(np.abs(x.real)) + np.sum(np.abs(x.imag)))
    return float(np.sum(np.abs(x)))
