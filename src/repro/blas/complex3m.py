"""Complex matrix multiplication kernels: standard 4M and 3M variants.

A complex product ``(Ar + i Ai)(Br + i Bi)`` normally takes four real
GEMMs (the "4M" decomposition)::

    Cr = Ar Br - Ai Bi
    Ci = Ar Bi + Ai Br

The ``COMPLEX_3M`` mode replaces this with three (Karatsuba-style)::

    t1 = Ar Br
    t2 = Ai Bi
    t3 = (Ar + Ai)(Br + Bi)
    Cr = t1 - t2
    Ci = t3 - t1 - t2

improving peak level-3 throughput by 4/3 at the cost of extra
additions and *different numerical cancellation behaviour* (the paper,
Section III-B): ``t3 - t1 - t2`` can cancel catastrophically when
``Ar Bi ~ -Ai Br`` yet ``t1, t2`` are large.

Both variants accept a ``real_gemm`` callable so the low-precision
split engines can be plugged underneath (MKL composes the modes the
same way for ``cgemm``).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.blas import backend as _backend
from repro.telemetry.provenance import current_site_id as _current_site_id
from repro.telemetry.registry import active as _telemetry_active

__all__ = ["gemm_4m", "gemm_3m", "gemm_4m_split_planned", "gemm_3m_planned"]


def _count_kernel(variant: str) -> None:
    """Per-variant complex-kernel counter (no-op while telemetry is off)."""
    t = _telemetry_active()
    if t is not None:
        t.count("blas.complex_kernels", variant=variant, site=_current_site_id() or "-")

RealGemm = Callable[[np.ndarray, np.ndarray], np.ndarray]


def _default_real_gemm(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return np.matmul(a, b)


def _parts(x: np.ndarray, real_dtype: np.dtype):
    # ascontiguousarray: .real/.imag of a complex array are strided
    # views; BLAS-style kernels (and the split engines) want packed data.
    return (
        np.ascontiguousarray(x.real, dtype=real_dtype),
        np.ascontiguousarray(x.imag, dtype=real_dtype),
    )


def _check(a: np.ndarray, b: np.ndarray) -> None:
    if a.ndim < 2 or b.ndim < 2:
        raise ValueError(
            f"complex gemm needs >= 2-D inputs, got {a.ndim}-D and {b.ndim}-D"
        )
    if a.shape[-1] != b.shape[-2]:
        raise ValueError(f"inner dimensions differ: {a.shape} @ {b.shape}")


def gemm_4m(
    a: np.ndarray,
    b: np.ndarray,
    real_gemm: Optional[RealGemm] = None,
) -> np.ndarray:
    """Standard 4-multiplication complex GEMM built on real GEMMs."""
    _check(a, b)
    _count_kernel("4m")
    rg = real_gemm or _default_real_gemm
    cdt = np.result_type(a.dtype, b.dtype, np.complex64)
    rdt = np.float64 if cdt == np.complex128 else np.float32
    ar, ai = _parts(a, rdt)
    br, bi = _parts(b, rdt)
    cr = rg(ar, br) - rg(ai, bi)
    ci = rg(ar, bi) + rg(ai, br)
    out = np.empty(cr.shape, dtype=cdt)
    out.real = cr
    out.imag = ci
    return out


def gemm_3m(
    a: np.ndarray,
    b: np.ndarray,
    real_gemm: Optional[RealGemm] = None,
) -> np.ndarray:
    """3-multiplication (``COMPLEX_3M``) complex GEMM."""
    _check(a, b)
    _count_kernel("3m")
    rg = real_gemm or _default_real_gemm
    cdt = np.result_type(a.dtype, b.dtype, np.complex64)
    rdt = np.float64 if cdt == np.complex128 else np.float32
    ar, ai = _parts(a, rdt)
    br, bi = _parts(b, rdt)
    t1 = rg(ar, br)
    t2 = rg(ai, bi)
    t3 = rg(ar + ai, br + bi)
    out = np.empty(t1.shape, dtype=cdt)
    out.real = t1 - t2
    out.imag = t3 - t1 - t2
    return out


# ----------------------------------------------------------------------
# Plan-aware variants: same arithmetic, cached decompositions.
#
# The handles (:class:`repro.blas.plan.OrientedOperand`) serve the
# contiguous real/imag parts — and, for the split path, their stacked
# component terms — from the operand's plan, so a frozen operand's
# packing/rounding work is not repeated per call.  The formulas and
# every accumulation order are identical to the callable-based kernels
# above, which the golden property tests verify bitwise.
# ----------------------------------------------------------------------


def gemm_4m_split_planned(a_handle, b_handle, precision, n_terms, backend=None) -> np.ndarray:
    """4M complex GEMM with split-precision component real GEMMs.

    This is ``gemm_4m(a, b, real_gemm=split_gemm_real)`` routed through
    prepared operands: the four real GEMMs share each part's split
    stack (built once) and run on the fused engine — a BF16X3 ``cgemm``
    drops from 24 fresh-temporary matmuls to 4 fused batches.  The
    component products execute on ``backend`` (default: the ambient
    :func:`repro.blas.backend.active_backend`); the Cr/Ci assembly is
    cheap element-wise work and stays in NumPy.
    """
    from repro.blas.workspace import split_gemm_fused

    be = _backend.active_backend() if backend is None else backend
    _count_kernel("4m_split_planned")
    cdt = np.dtype(a_handle.dtype)
    cr = split_gemm_fused(
        a_handle, b_handle, precision, n_terms, part_a="re", part_b="re", backend=be
    ) - split_gemm_fused(
        a_handle, b_handle, precision, n_terms, part_a="im", part_b="im", backend=be
    )
    ci = split_gemm_fused(
        a_handle, b_handle, precision, n_terms, part_a="re", part_b="im", backend=be
    ) + split_gemm_fused(
        a_handle, b_handle, precision, n_terms, part_a="im", part_b="re", backend=be
    )
    out = np.empty(cr.shape, dtype=cdt)
    out.real = cr
    out.imag = ci
    return out


def gemm_3m_planned(a_handle, b_handle, backend=None) -> np.ndarray:
    """3M complex GEMM over prepared operands (standard FP arithmetic).

    The ``Ar + Ai`` / ``Br + Bi`` sum terms are cached on the plan
    alongside the parts, so a frozen operand contributes zero per-call
    packing work.  The three real products run on ``backend``; the
    ``t3 - t1 - t2`` recombination (the mode's signature cancellation)
    stays in NumPy FP so its behaviour is backend-independent.
    """
    be = _backend.active_backend() if backend is None else backend
    _count_kernel("3m_planned")
    cdt = np.dtype(a_handle.dtype)
    t1 = be.to_numpy(be.matmul(a_handle.part_native(be, "re"), b_handle.part_native(be, "re")))
    t2 = be.to_numpy(be.matmul(a_handle.part_native(be, "im"), b_handle.part_native(be, "im")))
    t3 = be.to_numpy(
        be.matmul(a_handle.part_native(be, "re+im"), b_handle.part_native(be, "re+im"))
    )
    out = np.empty(t1.shape, dtype=cdt)
    out.real = t1 - t2
    out.imag = t3 - t1 - t2
    return out
