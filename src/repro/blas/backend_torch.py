"""Torch array backend: offload the level-3 products to ``torch.matmul``.

This is the first real executor behind the :mod:`repro.blas.backend`
seam.  The numerics policy (rounding, splitting, component selection,
accumulation order *across* products) stays in NumPy — it is cheap,
element-wise and bit-exact everywhere — while the O(n^3) component
products run wherever torch puts them:

* **CPU** (works everywhere, including CI): ``torch.matmul`` over
  FP32/FP64 tensors.  Multiplication and accumulation are IEEE FP32 /
  FP64, so the ``ieee_fp32_accumulation`` capability holds; results may
  still differ from NumPy in the low-order bits because the two
  libraries block/accumulate the ``k`` dimension in different orders —
  that freedom is exactly the one any BLAS implementation has, and the
  cross-backend oracle suite pins the documented tolerance contract
  (docs/BACKENDS.md, tolerance table).
* **CUDA** (auto-detected): tensors are staged onto the device once
  per frozen operand (the plan layer caches native mirrors per
  backend) and the products run on cuBLAS.  TF32 tensor-core matmul is
  **disabled** by default (``allow_tf32=False``): reduced precision is
  *our emulation's* job; the executor underneath must be a faithful
  IEEE FP32 machine or the error model stops being analytic.  Pass
  ``allow_tf32=True`` to measure real tensor-core behaviour — the
  backend then reports ``ieee_fp32_accumulation=False`` and only the
  relaxed tolerance contract applies.  The switch itself
  (``torch.backends.cuda.matmul.allow_tf32``) is process-global in
  torch, so the backend never sets it at construction; each matmul
  dispatch pins it to the instance's setting and restores it after,
  so two instances with different settings (or foreign torch code)
  can never flip each other's arithmetic.

Import of this module requires torch; :func:`repro.blas.backend.get_backend`
wraps the import so ``repro.blas`` itself never pays for (or fails on)
it.  A missing torch raises :class:`~repro.blas.backend.BackendUnavailable`
with the install hint; ``REPRO_BACKEND=torch`` on a host without torch
degrades to NumPy with a warning instead (see ``refresh_from_env``).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.blas.backend import ArrayBackend, BackendCapabilities, BackendUnavailable

__all__ = ["TorchBackend"]


def _import_torch():
    try:
        import torch
    except ImportError as exc:
        raise BackendUnavailable(
            "torch is not installed — the torch backend needs the optional "
            "dependency (pip install 'repro[torch]' or pip install torch); "
            "the numpy backend is always available"
        ) from exc
    return torch


class TorchBackend(ArrayBackend):
    """Execute the hot-path array ops on torch (CPU or CUDA).

    Parameters
    ----------
    device:
        ``"cpu"``, ``"cuda"`` or ``None`` (auto: CUDA when available).
        Requesting ``"cuda"`` on a host without one raises
        :class:`BackendUnavailable`.
    allow_tf32:
        Permit cuBLAS to use TF32 tensor cores for FP32 matmuls.  Off
        by default — see the module docstring.  Ignored on CPU.
    """

    name = "torch"

    def __init__(self, device: Optional[str] = None, allow_tf32: bool = False):
        torch = _import_torch()
        self.torch = torch
        if device is None:
            device = "cuda" if torch.cuda.is_available() else "cpu"
        if device.startswith("cuda") and not torch.cuda.is_available():
            raise BackendUnavailable(
                "torch is installed but no CUDA device is available; "
                "use the torch-cpu backend instead"
            )
        self.device = torch.device(device)
        self._is_cuda = self.device.type == "cuda"
        # Never written to torch's process-global switch here: a second
        # instance with a different setting would silently change the
        # arithmetic of every cached one.  matmul() pins the global to
        # this value per dispatch instead.
        self.allow_tf32 = bool(allow_tf32) and self._is_cuda
        self.capabilities = BackendCapabilities(
            ieee_fp32_accumulation=not self.allow_tf32,
            bitwise_numpy=False,
            device=self.device.type,
            native_is_numpy=False,
        )
        self._np_to_torch = {
            np.dtype(np.float32): torch.float32,
            np.dtype(np.float64): torch.float64,
            np.dtype(np.complex64): torch.complex64,
            np.dtype(np.complex128): torch.complex128,
            np.dtype(np.int64): torch.int64,
        }
        self._torch_to_np = {v: k for k, v in self._np_to_torch.items()}

    @property
    def cache_key(self) -> str:
        key = f"torch-{self.device.type}"
        return key + "-tf32" if self.allow_tf32 else key

    # -- conversion seam ----------------------------------------------

    def to_native(self, x: np.ndarray):
        t = self.torch.as_tensor(np.ascontiguousarray(x))
        return t.to(self.device) if self._is_cuda else t

    def to_numpy(self, x) -> np.ndarray:
        if self._is_cuda:
            x = x.cpu()
        return x.numpy()

    # -- allocation / dtype -------------------------------------------

    def _dtype(self, dtype):
        dt = np.dtype(dtype)
        try:
            return self._np_to_torch[dt]
        except KeyError:
            raise TypeError(f"torch backend has no mapping for dtype {dt}") from None

    def empty(self, shape, dtype):
        return self.torch.empty(tuple(shape), dtype=self._dtype(dtype), device=self.device)

    def cast(self, x, dtype):
        return x.to(self._dtype(dtype))

    def nbytes(self, x) -> int:
        return x.numel() * x.element_size()

    def result_dtype(self, a, b) -> np.dtype:
        return self._torch_to_np[self.torch.result_type(a, b)]

    def np_dtype(self, x) -> np.dtype:
        try:
            return self._torch_to_np[x.dtype]
        except KeyError:
            raise TypeError(
                f"torch backend has no NumPy mapping for dtype {x.dtype}"
            ) from None

    # -- compute -------------------------------------------------------

    def matmul(self, a, b, out=None):
        if not self._is_cuda:
            if out is None:
                return self.torch.matmul(a, b)
            return self.torch.matmul(a, b, out=out)
        # allow_tf32 is process-global in torch: pin it to this
        # instance's setting for the duration of the dispatch and
        # restore it after, so the capability flag always states what
        # actually ran regardless of what else touched the global.
        mm = self.torch.backends.cuda.matmul
        prev = mm.allow_tf32
        mm.allow_tf32 = self.allow_tf32
        try:
            if out is None:
                return self.torch.matmul(a, b)
            return self.torch.matmul(a, b, out=out)
        finally:
            mm.allow_tf32 = prev

    def take(self, x, indices, out):
        idx = self.torch.as_tensor(np.ascontiguousarray(indices), device=self.device)
        return self.torch.index_select(x, 0, idx, out=out)

    def add_(self, out, x):
        return out.add_(x)

    def copy(self, x):
        return x.clone()

    def reduce(self, x, axis=None):
        return self.torch.sum(x) if axis is None else self.torch.sum(x, dim=axis)

    def synchronize(self) -> None:
        if self._is_cuda:
            self.torch.cuda.synchronize()
