"""End-to-end QD-step timing per compute mode (Fig. 3a).

The paper times 500 QD steps with unitrace for the 40-atom and
135-atom systems at FP64, FP32 and each alternative BLAS mode.  Those
systems do not fit a laptop, so the timing is evaluated on the device
model over the analytic step schedule (:mod:`repro.core.schedule`) —
the same schedule a real run books on the device, as the integration
tests verify.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.blas.modes import ComputeMode
from repro.core.schedule import psi_bytes, qd_step_schedule
from repro.gpu.gemm_model import GemmModel
from repro.gpu.specs import DeviceSpec, MAX_1550_STACK
from repro.types import Precision

__all__ = ["StepTiming", "PerfStudy", "FIG3A_CONFIGS"]

#: Fig. 3a's precision configurations in plotting order:
#: (label, LFD storage precision, BLAS compute mode).
FIG3A_CONFIGS: Tuple[Tuple[str, Precision, ComputeMode], ...] = (
    ("FP64", Precision.FP64, ComputeMode.STANDARD),
    ("FP32", Precision.FP32, ComputeMode.STANDARD),
    ("BF16", Precision.FP32, ComputeMode.FLOAT_TO_BF16),
    ("BF16X2", Precision.FP32, ComputeMode.FLOAT_TO_BF16X2),
    ("BF16X3", Precision.FP32, ComputeMode.FLOAT_TO_BF16X3),
    ("TF32", Precision.FP32, ComputeMode.FLOAT_TO_TF32),
    ("COMPLEX_3M", Precision.FP32, ComputeMode.COMPLEX_3M),
)


@dataclasses.dataclass(frozen=True)
class StepTiming:
    """Modelled cost of one QD step under one configuration."""

    label: str
    storage: Precision
    mode: ComputeMode
    blas_seconds: float
    stream_seconds: float

    @property
    def step_seconds(self) -> float:
        return self.blas_seconds + self.stream_seconds

    def block_seconds(self, n_steps: int = 500) -> float:
        """Time for the paper's 500-QD-step measurement window."""
        return self.step_seconds * n_steps

    @property
    def blas_fraction(self) -> float:
        return self.blas_seconds / self.step_seconds if self.step_seconds else 0.0


class PerfStudy:
    """Evaluates Fig. 3a rows on the modelled device."""

    def __init__(self, spec: DeviceSpec = MAX_1550_STACK):
        self.spec = spec
        self.model = GemmModel(spec)

    def step_timing(
        self,
        n_grid: int,
        n_orb: int,
        n_occ: int,
        storage: Precision,
        mode: ComputeMode,
        label: str = "",
    ) -> StepTiming:
        """Model one QD step of an (n_grid, n_orb) system."""
        gemms, streams = qd_step_schedule(n_grid, n_orb, n_occ, storage)
        blas = sum(
            self.model.seconds(g.routine, g.m, g.n, g.k, mode) for g in gemms
        )
        buf = psi_bytes(n_grid, n_orb, storage)
        rate = self.spec.stream_rate(buf)
        stream = sum(
            s.passes * buf / rate + self.spec.kernel_launch_overhead for s in streams
        )
        return StepTiming(
            label=label or mode.env_value,
            storage=storage,
            mode=mode,
            blas_seconds=blas,
            stream_seconds=stream,
        )

    def figure_3a(
        self,
        systems: Optional[Dict[str, Tuple[int, int, int]]] = None,
        n_steps: int = 500,
    ) -> Dict[str, List[StepTiming]]:
        """Fig. 3a: 500-QD-step times for both systems, all configs.

        ``systems`` maps a label to ``(n_grid, n_orb, n_occ)``;
        defaults to the paper's 40-atom (64^3, 256, 128) and 135-atom
        (96^3, 1024, 432) systems.
        """
        if systems is None:
            systems = {
                "40-atom": (64**3, 256, 128),
                "135-atom": (96**3, 1024, 432),
            }
        out: Dict[str, List[StepTiming]] = {}
        for label, (n_grid, n_orb, n_occ) in systems.items():
            rows = [
                self.step_timing(n_grid, n_orb, n_occ, storage, mode, label=cfg_label)
                for cfg_label, storage, mode in FIG3A_CONFIGS
            ]
            out[label] = rows
        return out

    def speedup_over_fp32(self, timings: List[StepTiming]) -> Dict[str, float]:
        """End-to-end speedups vs the FP32 row of a Fig. 3a series."""
        fp32 = next(t for t in timings if t.label == "FP32")
        return {t.label: fp32.step_seconds / t.step_seconds for t in timings}
