"""Static tables of the paper: I (peaks), II (modes), III (simulation
parameters), IV (formats), V (system sizes).

The artifact appendix notes that Tables 1-5 "do not require execution
of the code": they are hardware specs, mode definitions, input-file
parameters and format facts.  Each function returns the rows so tests
can pin them and the experiment scripts can print them.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.blas.modes import ComputeMode
from repro.gpu.specs import DeviceSpec, MAX_1550_STACK, peak_table
from repro.types import EXPONENT_BITS, MANTISSA_BITS, Precision

__all__ = [
    "table1_rows",
    "table2_rows",
    "table2_extended_rows",
    "table3_rows",
    "table4_rows",
    "table5_rows",
    "peak_theoretical_speedup",
]


def table1_rows(spec: DeviceSpec = MAX_1550_STACK) -> List[Tuple[str, float, str, str]]:
    """Table I: theoretical peak throughput for a single stack."""
    return [(p.name, peak, unit, engine) for p, peak, unit, engine in peak_table(spec)]


def peak_theoretical_speedup(mode: ComputeMode, spec: DeviceSpec = MAX_1550_STACK) -> float:
    """Peak speedup of ``mode`` over its native baseline.

    Low-precision modes (vs FP32): (engine peak ratio) / (number of
    component products): BF16 419/26 = 16x, BF16x2 16/3, BF16x3
    16/6 = 8/3, TF32 209/26 = 8x.  COMPLEX_3M: 4/3 from the saved
    multiplication.  ``OZAKI_INT8`` follows the same formula on the
    INT8 engine peak (839/26/6 ~ 5.4x at three slices).
    ``EMULATED_FP64`` is quoted against *native FP64* — the hardware it
    targets lacks (fast) FP64 units, so the meaningful ratio is the
    FP32-engine peak over the FP64 peak divided by the six pair
    products.
    """
    if mode is ComputeMode.STANDARD:
        return 1.0
    if mode.uses_3m:
        return 4.0 / 3.0
    if mode.uses_fp64_emulation:
        peak_ratio = spec.peak(Precision.FP32) / spec.peak(Precision.FP64)
        return peak_ratio / 6.0
    peak_ratio = spec.peak(mode.component_precision) / spec.peak(Precision.FP32)
    return peak_ratio / mode.n_component_products


def table2_rows(spec: DeviceSpec = MAX_1550_STACK) -> List[Tuple[str, str, float]]:
    """Table II: (mode, environment value, peak theoretical speedup)."""
    modes = [
        ComputeMode.FLOAT_TO_BF16,
        ComputeMode.FLOAT_TO_BF16X2,
        ComputeMode.FLOAT_TO_BF16X3,
        ComputeMode.FLOAT_TO_TF32,
        ComputeMode.COMPLEX_3M,
    ]
    return [
        (m.name, m.env_value, peak_theoretical_speedup(m, spec)) for m in modes
    ]


def table2_extended_rows(spec: DeviceSpec = MAX_1550_STACK) -> List[Tuple[str, str, float]]:
    """Post-paper modes in Table II's format (kept separate so the
    pinned paper rows stay byte-stable).

    ``OZAKI_INT8`` is quoted vs FP32 like the paper modes;
    ``EMULATED_FP64`` vs native FP64 (see
    :func:`peak_theoretical_speedup`).
    """
    modes = [ComputeMode.OZAKI_INT8, ComputeMode.EMULATED_FP64]
    return [
        (m.name, m.env_value, peak_theoretical_speedup(m, spec)) for m in modes
    ]


def table3_rows() -> List[Tuple[str, float]]:
    """Table III: key simulation parameters of the accuracy runs."""
    return [
        ("Timestep (a.u.)", 0.02),
        ("Total Number of QD Steps", 21_000),
        ("Total Simulation Time (fs)", 10.0),
    ]


def table4_rows() -> List[Tuple[str, int, int]]:
    """Table IV: exponent and mantissa bits per precision format."""
    order = [Precision.FP64, Precision.FP32, Precision.TF32, Precision.BF16]
    return [(p.name, EXPONENT_BITS[p], MANTISSA_BITS[p]) for p in order]


def table5_rows() -> List[Tuple[int, str, int]]:
    """Table V: system sizes studied (atoms, mesh, N_orb)."""
    return [
        (40, "64x64x64", 256),
        (135, "96x96x96", 1024),
    ]
