"""Adaptive precision scheduler: closed-loop mode escalation.

The paper compares five *static* ``MKL_BLAS_COMPUTE_MODE`` settings
and leaves per-call-site mixing to future work (Section IV-D).  This
module closes the loop the drift observatory (PR 5) opened: run every
call site at the cheapest mode, watch the live budget utilization the
:class:`~repro.telemetry.drift.DriftMonitor` computes each QD step,
and escalate only the sites whose drift approaches the budget —
maximum speed at a *fixed* accuracy contract instead of a fixed mode.

Controller design
-----------------

* **Ladder** — the candidate modes, ordered by *decreasing analytic
  error* (:func:`repro.core.error_model.mode_effective_error`), by
  default ``BF16 -> TF32 -> BF16X2 -> OZAKI_INT8 -> FP32 ->
  EMULATED_FP64``.  Note TF32 sits *below* BF16X2: a single
  10-bit-mantissa product (``~2^-11`` effective) is less accurate than
  the two-term BF16 compensated split (``~2^-16``), even though the
  paper's hardware runs it faster.  The Ozaki INT8 split (``~2^-20``
  at three slices) lands between BF16X2 and FP32, and emulated FP64
  (``~2^-52``) tops the ladder.  Escalation must be monotone in
  accuracy or a breach could escalate into a *worse* mode and loop.
* **Escalation** — at each QD step the scheduler reads the monitor's
  current budget utilization (max over nexc/javg/ekin).  Crossing
  ``escalate_at`` (default 0.7, i.e. before the monitor's own 0.8
  warn) promotes *one* site — the one carrying the largest share of
  ``blas.site.flops`` when telemetry is live, else the fixed order
  ``nlp_prop > calc_energy > remap_occ`` (state-mutating first) —
  subject to a minimum dwell time.  An actual budget **breach**
  promotes *every* site one rung immediately, ignoring dwell.
* **Demotion** — only at SCF boundaries: the FP64 QXMD update
  re-anchors the state, so that is the one point where relaxing
  precision cannot compound an existing drift.  A block that stayed
  below ``demote_below`` (default 0.2) with zero alerts demotes every
  site one rung.  The wide gap between 0.2 and 0.7 is the hysteresis
  band that prevents thrash.
* **Budget** — the accuracy contract is a *fixed* envelope derived
  from ``budget_mode`` (default ``FLOAT_TO_BF16X2``), not from
  whatever mode happens to be active: "as fast as possible while
  staying within the BF16X2-grade envelope".

Fast-path discipline: the scheduler owns a mutable
:class:`~repro.blas.policy.AdaptiveSitePolicy`; per-GEMM cost is one
policy-pointer read (``policy.mode_for(site)``).  All decisions happen
at step/SCF boundaries.  Escalations re-use already-prepared split
plans via the prefix-extension path in
:meth:`repro.blas.plan.PreparedOperand.split_stack`.

Import discipline: imported by ``dcmesh.simulation`` — nothing from
``repro.core`` that transitively imports the simulation driver may be
imported at module scope (``error_model`` only needs ``blas.gemm``).
"""

from __future__ import annotations

import contextlib
import dataclasses
import os
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.blas.modes import ComputeMode
from repro.blas.policy import AdaptiveSitePolicy
from repro.core.error_model import mode_effective_error
from repro.telemetry.provenance import all_sites as _all_sites
from repro.telemetry.registry import active as _telemetry_active

__all__ = [
    "ADAPTIVE_ENV",
    "SCHED_SITES",
    "DEFAULT_LADDER",
    "SchedulerConfig",
    "ModeSwitch",
    "AdaptiveScheduler",
    "adaptive_enabled",
    "set_adaptive_enabled",
]

#: ``REPRO_ADAPTIVE=1`` enables the ambient scheduler with no source
#: changes (mirrors ``REPRO_DRIFT`` / ``REPRO_TELEMETRY``).
ADAPTIVE_ENV = "REPRO_ADAPTIVE"

#: The LFD call sites under scheduler control, in the default
#: escalation-priority order: the state-mutating propagation first,
#: then the observable-only energy and occupation sites.
SCHED_SITES = ("nlp_prop", "calc_energy", "remap_occ")

#: Candidate modes, kept in increasing-accuracy order by
#: :func:`_sort_ladder` (see module docstring for why TF32 < BF16X2).
#: ``OZAKI_INT8`` (``~2^-20`` at three slices) slots between BF16X2 and
#: FP32; ``EMULATED_FP64`` (``~2^-52``) is the top rung — the escape
#: hatch when even FP32 accumulation cannot hold the budget.
DEFAULT_LADDER = (
    ComputeMode.FLOAT_TO_BF16,
    ComputeMode.FLOAT_TO_BF16X2,
    ComputeMode.FLOAT_TO_TF32,
    ComputeMode.OZAKI_INT8,
    ComputeMode.STANDARD,
    ComputeMode.EMULATED_FP64,
)


def _sort_ladder(modes: Sequence[Union[str, ComputeMode]]) -> Tuple[ComputeMode, ...]:
    """Order ``modes`` by decreasing analytic error (escalation order)."""
    parsed = [ComputeMode.parse(m) for m in modes]
    if len(set(parsed)) != len(parsed):
        raise ValueError(f"ladder has duplicate modes: {parsed}")
    return tuple(sorted(parsed, key=mode_effective_error, reverse=True))


@dataclasses.dataclass(frozen=True)
class SchedulerConfig:
    """Tuning knobs of the closed loop (see module docstring)."""

    #: Utilization fraction above which one site is promoted.
    escalate_at: float = 0.7
    #: Block-max utilization below which a quiet block demotes.
    demote_below: float = 0.2
    #: Minimum QD steps between warn-driven promotions of one site
    #: (breaches ignore it).
    min_dwell_steps: int = 5
    #: Mode whose analytic envelope *is* the accuracy contract.
    budget_mode: Union[str, ComputeMode] = ComputeMode.FLOAT_TO_BF16X2
    #: Envelope headroom multiplier passed to the budget derivation.
    budget_headroom: float = 4.0
    #: Candidate modes (re-sorted by decreasing analytic error).
    ladder: Tuple[Union[str, ComputeMode], ...] = DEFAULT_LADDER
    #: Sites under control, in fallback escalation-priority order.
    sites: Tuple[str, ...] = SCHED_SITES

    def __post_init__(self) -> None:
        if not (0.0 < self.demote_below < self.escalate_at <= 1.0):
            raise ValueError(
                "need 0 < demote_below < escalate_at <= 1 "
                f"(got {self.demote_below}, {self.escalate_at})"
            )
        if self.min_dwell_steps < 0:
            raise ValueError("min_dwell_steps must be >= 0")
        if len(self.ladder) < 2:
            raise ValueError("ladder needs at least two modes")


@dataclasses.dataclass(frozen=True)
class ModeSwitch:
    """One scheduler decision, as recorded in the switch timeline."""

    step: int
    site: str
    from_mode: ComputeMode
    to_mode: ComputeMode
    reason: str                #: ``"warn"`` | ``"breach"`` | ``"scf_reset"``
    utilization: Optional[float]

    def as_dict(self) -> dict:
        return {
            "step": self.step,
            "site": self.site,
            "from": self.from_mode.env_value,
            "to": self.to_mode.env_value,
            "reason": self.reason,
            "utilization": self.utilization,
        }


class AdaptiveScheduler:
    """Closed-loop per-site precision controller.

    Usage (the :meth:`repro.dcmesh.simulation.Simulation.run`
    ``adaptive=`` parameter does all of this)::

        sched = AdaptiveScheduler()
        with sched.policy.active():
            ... per QD step:    sched.on_step(step, monitor)
            ... per SCF block:  sched.on_scf_boundary(step, monitor)

    ``clamp`` pins every site (and the policy default, so the FP64
    phase's complex calls resolve identically too) to one mode and
    disables all decisions — the identity-test configuration: a
    clamped scheduler must be bitwise-indistinguishable from the
    corresponding static-mode run.
    """

    def __init__(
        self,
        config: Optional[SchedulerConfig] = None,
        clamp: Union[str, ComputeMode, None] = None,
    ):
        self.config = config or SchedulerConfig()
        self.ladder = _sort_ladder(self.config.ladder)
        self.clamp = None if clamp is None else ComputeMode.parse(clamp)
        self.budget_mode = ComputeMode.parse(self.config.budget_mode)
        start = self.clamp if self.clamp is not None else self.ladder[0]
        self._rung: Dict[str, int] = {
            s: (self.ladder.index(start) if start in self.ladder else 0)
            for s in self.config.sites
        }
        self.policy = AdaptiveSitePolicy(
            {s: start for s in self.config.sites},
            default=self.clamp,
        )
        self.switches: List[ModeSwitch] = []
        self.escalations = 0
        self.demotions = 0
        self.breaches_seen = 0
        self.unhandled_breaches = 0
        self._last_switch: Dict[str, int] = {s: -(10**9) for s in self.config.sites}
        self._alert_cursor = 0
        self._block_max_util: Optional[float] = None
        self._block_alerts = 0
        self._publish_rungs()

    # -- introspection -------------------------------------------------

    def site_modes(self) -> Dict[str, ComputeMode]:
        """Current mode of every controlled site."""
        if self.clamp is not None:
            return {s: self.clamp for s in self._rung}
        return {s: self.ladder[r] for s, r in self._rung.items()}

    def mode_for(self, site: str) -> ComputeMode:
        if self.clamp is not None:
            return self.clamp
        return self.ladder[self._rung[site]]

    @contextlib.contextmanager
    def scope(self) -> Iterator["AdaptiveScheduler"]:
        """Install this scheduler's policy for the with-block."""
        with self.policy.active():
            yield self

    # -- control inputs ------------------------------------------------

    def on_step(self, step: int, monitor=None) -> List[ModeSwitch]:
        """Per-QD-step decision point (call after ``monitor.observe``).

        Returns the switches made this step (usually none — the common
        case is a single utilization read and two comparisons).
        """
        if self.clamp is not None or monitor is None:
            return []
        util = monitor.current_utilization()
        new_alerts = monitor.alerts[self._alert_cursor:]
        self._alert_cursor = len(monitor.alerts)
        self._block_alerts += len(new_alerts)
        if util is not None and (
            self._block_max_util is None or util > self._block_max_util
        ):
            self._block_max_util = util
        breached = any(a.level == "breach" for a in new_alerts)
        made: List[ModeSwitch] = []
        if breached:
            self.breaches_seen += 1
            # A spent budget is not a tuning signal, it is an accuracy
            # failure in progress: promote everything at once.
            for site in self.config.sites:
                sw = self._escalate(site, step, "breach", util, ignore_dwell=True)
                if sw is not None:
                    made.append(sw)
            if not made:
                # Already at the top of the ladder everywhere — the
                # contract cannot be restored by switching modes.
                self.unhandled_breaches += 1
        elif util is not None and util >= self.config.escalate_at:
            for site in self._priority_order():
                sw = self._escalate(site, step, "warn", util)
                if sw is not None:
                    made.append(sw)
                    break
        return made

    def on_scf_boundary(self, step: int, monitor=None) -> List[ModeSwitch]:
        """SCF-block decision point (call *before* the latch reset,
        so the block's alert count is still visible here)."""
        made: List[ModeSwitch] = []
        if self.clamp is None:
            quiet = self._block_alerts == 0 and (
                self._block_max_util is None
                or self._block_max_util < self.config.demote_below
            )
            if quiet:
                # The FP64 update re-anchored the state; a quiet block
                # earns one rung of relaxation everywhere.
                for site in self.config.sites:
                    sw = self._demote(site, step, "scf_reset", self._block_max_util)
                    if sw is not None:
                        made.append(sw)
        self._block_max_util = None
        self._block_alerts = 0
        return made

    # -- decision internals --------------------------------------------

    def _priority_order(self) -> List[str]:
        """Sites by descending FLOP share (live telemetry), else the
        configured fixed order.  Biggest contributor escalates first —
        it injects the most rounding error per step."""
        t = _telemetry_active()
        if t is None:
            return list(self.config.sites)
        flops = {s: 0.0 for s in self.config.sites}
        for site in _all_sites():
            if site.anchor in flops:
                flops[site.anchor] += t.counter_value(
                    "blas.site.flops", site_id=site.site_id
                )
        order = list(self.config.sites)
        order.sort(key=lambda s: flops[s], reverse=True)
        return order

    def _escalate(
        self,
        site: str,
        step: int,
        reason: str,
        util: Optional[float],
        ignore_dwell: bool = False,
    ) -> Optional[ModeSwitch]:
        rung = self._rung[site]
        if rung >= len(self.ladder) - 1:
            return None
        if not ignore_dwell and (
            step - self._last_switch[site] < self.config.min_dwell_steps
        ):
            return None
        self.escalations += 1
        return self._switch(site, rung + 1, step, reason, util)

    def _demote(
        self, site: str, step: int, reason: str, util: Optional[float]
    ) -> Optional[ModeSwitch]:
        rung = self._rung[site]
        if rung <= 0:
            return None
        self.demotions += 1
        return self._switch(site, rung - 1, step, reason, util)

    def _switch(
        self, site: str, new_rung: int, step: int, reason: str, util: Optional[float]
    ) -> ModeSwitch:
        old = self.ladder[self._rung[site]]
        new = self.ladder[new_rung]
        self._rung[site] = new_rung
        self._last_switch[site] = step
        self.policy.set_mode(site, new)
        sw = ModeSwitch(
            step=step, site=site, from_mode=old, to_mode=new,
            reason=reason, utilization=None if util is None else float(util),
        )
        self.switches.append(sw)
        t = _telemetry_active()
        if t is not None:
            direction = "up" if new_rung > self.ladder.index(old) else "down"
            t.count("sched.switches", site=site, direction=direction)
            t.gauge("sched.site_rung", new_rung, site=site)
            t.instant(
                "sched.switch",
                cat="sched",
                site=site,
                from_mode=old.env_value,
                to_mode=new.env_value,
                step=step,
                reason=reason,
                utilization=sw.utilization,
            )
        return sw

    def _publish_rungs(self) -> None:
        t = _telemetry_active()
        if t is not None:
            for site, rung in self._rung.items():
                t.gauge("sched.site_rung", rung, site=site)

    # -- offline view --------------------------------------------------

    def summary(self) -> dict:
        """JSON-friendly digest for results, benchmarks and reports."""
        return {
            "ladder": [m.env_value for m in self.ladder],
            "clamp": None if self.clamp is None else self.clamp.env_value,
            "budget_mode": self.budget_mode.env_value,
            "escalate_at": self.config.escalate_at,
            "demote_below": self.config.demote_below,
            "min_dwell_steps": self.config.min_dwell_steps,
            "final_modes": {s: m.env_value for s, m in self.site_modes().items()},
            "escalations": self.escalations,
            "demotions": self.demotions,
            "breaches_seen": self.breaches_seen,
            "unhandled_breaches": self.unhandled_breaches,
            "switches": [s.as_dict() for s in self.switches],
        }


# ----------------------------------------------------------------------
# Ambient enablement (the --adaptive / REPRO_ADAPTIVE path).
# ----------------------------------------------------------------------

_enabled_override: Optional[bool] = None


def adaptive_enabled() -> bool:
    """Whether ambient adaptive scheduling is requested.

    Priority: :func:`set_adaptive_enabled` override, then the
    ``REPRO_ADAPTIVE`` environment variable.
    """
    if _enabled_override is not None:
        return _enabled_override
    return os.environ.get(ADAPTIVE_ENV, "").strip() not in ("", "0")


def set_adaptive_enabled(enabled: Optional[bool]) -> None:
    """Force ambient adaptive scheduling on/off (None = defer to env)."""
    global _enabled_override
    _enabled_override = None if enabled is None else bool(enabled)
