"""Section V-B's proxy error model, analytic and empirical.

The paper explains why the relative BF16 error is independent of
matrix size: rounding off all but ``n`` mantissa bits perturbs each
input by at most ``2^-(n+1)`` relative, so a single product carries at
most ``~2^-n`` relative error — *independent of the data* — and a sum
of same-sign products retains the bound.  The functions here state the
bound and measure the actual GEMM error so tests can verify both the
bound and the size-independence claim.
"""

from __future__ import annotations


import numpy as np

from repro.blas.gemm import gemm
from repro.blas.modes import ComputeMode
from repro.blas.rounding import ozaki_max_relative_error
from repro.types import MANTISSA_BITS, Precision

__all__ = [
    "input_rounding_bound",
    "multiplication_error_bound",
    "mode_effective_error",
    "observed_gemm_relative_error",
]


def input_rounding_bound(precision: Precision) -> float:
    """Max relative input perturbation: ``2^-(n+1)`` for ``n`` kept bits."""
    return 2.0 ** -(MANTISSA_BITS[precision] + 1)


def multiplication_error_bound(precision: Precision) -> float:
    """Paper's bound on one product's relative error.

    ``|(a+da)(b+db) - ab| / |ab| <= 2^-n + o(2^-n)``; we return the
    slightly conservative first-order closed form
    ``2*eps + eps^2`` with ``eps = 2^-(n+1)``.
    """
    eps = input_rounding_bound(precision)
    return 2.0 * eps + eps * eps


def mode_effective_error(mode: ComputeMode) -> float:
    """Expected relative GEMM error of a whole compute mode.

    Each additional split term recovers roughly one term's worth of
    mantissa (8 bits for BF16, 11 for TF32): ``2^-(n_terms*(bits+1))``.
    BF16x3 thus lands at ~2^-24, "comparable to standard
    single-precision arithmetic" (Section III-B), and ``COMPLEX_3M`` /
    ``STANDARD`` sit at the FP32 epsilon (modulo cancellation).

    The post-paper modes extend the ladder at both ends:
    ``OZAKI_INT8`` carries ``2^-(7s - 1)`` at ``s`` slices (``2^-20``
    at the default three — between BF16x2 and FP32), and
    ``EMULATED_FP64`` sits at the FP64 unit roundoff ``2^-52``
    (FP32-term products, FP64 accumulation).
    """
    if mode.uses_fp64_emulation:
        return 2.0**-52  # FP64 unit roundoff
    if mode.uses_int8:
        return ozaki_max_relative_error(mode.n_terms)
    if mode.is_low_precision:
        bits = MANTISSA_BITS[mode.component_precision]
        effective_bits = min(mode.n_terms * (bits + 1), 24)
        return 2.0**-effective_bits
    return 2.0**-24  # FP32 unit roundoff


def observed_gemm_relative_error(
    mode: ComputeMode,
    m: int,
    n: int,
    k: int,
    seed: int = 0,
    positive: bool = True,
) -> float:
    """Empirical max elementwise relative GEMM error of ``mode`` vs FP64.

    ``positive=True`` draws inputs from (0.5, 1.5) so all products
    share a sign — the regime in which the paper's bound applies
    exactly.  With mixed signs, cancellation can amplify the *relative*
    error of individual output elements arbitrarily; tests use this to
    demonstrate both regimes.
    """
    rng = np.random.default_rng(seed)
    if positive:
        a = rng.uniform(0.5, 1.5, (m, k)).astype(np.float32)
        b = rng.uniform(0.5, 1.5, (k, n)).astype(np.float32)
    else:
        a = rng.standard_normal((m, k)).astype(np.float32)
        b = rng.standard_normal((k, n)).astype(np.float32)
    ref = a.astype(np.float64) @ b.astype(np.float64)
    out = gemm(a, b, mode=mode).astype(np.float64)
    denom = np.maximum(np.abs(ref), np.finfo(np.float64).tiny)
    return float((np.abs(out - ref) / denom).max())
