"""Accuracy precision study: one system, every compute mode.

This orchestrates the paper's Artifact A2 workflow: run the identical
simulation once per ``MKL_BLAS_COMPUTE_MODE`` value (plus the FP32
reference) and extract the deviation of the key observables.  The
ground state is converged once (FP64 QXMD) and shared by every run,
exactly as re-running the same binary with a different environment
variable would.

The per-mode runs are embarrassingly parallel (the paper executes
them as independent jobs); ``run(parallel=True)`` distributes them
over a process pool and — because every run is bitwise deterministic —
produces exactly the serial results.
"""

from __future__ import annotations

import dataclasses
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Dict, Iterable, List, Optional

from repro.blas.modes import ComputeMode
from repro.core.deviation import OBSERVABLES, DeviationSeries, deviation_from_reference
from repro.dcmesh.simulation import Simulation, SimulationConfig, SimulationResult

__all__ = [
    "STUDY_MODES",
    "PAPER_STUDY_MODES",
    "PrecisionStudy",
    "StudyResult",
    "DistributedStudyResult",
    "run_distributed_study",
]

#: The five alternative modes of Fig. 1, in the paper's order, plus
#: the post-paper rungs (Ozaki INT8 between BF16X2 and FP32 on the
#: analytic error ladder; emulated FP64 above everything).
STUDY_MODES = (
    ComputeMode.FLOAT_TO_BF16,
    ComputeMode.FLOAT_TO_BF16X2,
    ComputeMode.FLOAT_TO_BF16X3,
    ComputeMode.FLOAT_TO_TF32,
    ComputeMode.COMPLEX_3M,
    ComputeMode.OZAKI_INT8,
    ComputeMode.EMULATED_FP64,
)

#: The paper's original five (Fig. 1/2 pinning tests use these).
PAPER_STUDY_MODES = STUDY_MODES[:5]


@dataclasses.dataclass
class StudyResult:
    """All runs of a study plus their deviation series."""

    config: SimulationConfig
    results: Dict[ComputeMode, SimulationResult]
    deviations: Dict[str, List[DeviationSeries]]

    def series(self, observable: str, mode: ComputeMode) -> DeviationSeries:
        """Deviation series for one (observable, mode) pair."""
        for s in self.deviations[observable]:
            if s.mode is mode:
                return s
        raise KeyError(f"no deviation series for {observable}/{mode}")

    def max_deviation_table(self) -> List[tuple]:
        """(observable, mode, max deviation) rows — Fig. 1's headline
        numbers (e.g. the near-5-Hartree BF16 kinetic-energy case)."""
        rows = []
        for obs, series_list in self.deviations.items():
            for s in series_list:
                rows.append((obs, s.mode.env_value, s.max_deviation))
        return rows


class PrecisionStudy:
    """Run the full Fig. 1 / Fig. 2 accuracy sweep."""

    def __init__(
        self,
        config: SimulationConfig,
        modes: Iterable[ComputeMode] = STUDY_MODES,
        observables: Iterable[str] = OBSERVABLES,
    ):
        self.config = config
        self.modes = tuple(modes)
        self.observables = tuple(observables)
        if ComputeMode.STANDARD in self.modes:
            raise ValueError("STANDARD is the implicit reference; list only alternatives")

    def run(
        self,
        n_steps: Optional[int] = None,
        progress: Optional[Callable[[ComputeMode], None]] = None,
        parallel: bool = False,
        max_workers: Optional[int] = None,
    ) -> StudyResult:
        """Execute the reference plus every alternative-mode run.

        ``parallel=True`` fans the per-mode runs out over a process
        pool (one worker per mode by default, capped at the CPU
        count); results are bitwise identical to the serial path.
        """
        sim = Simulation(self.config)
        sim.setup()  # one shared FP64 ground state
        all_modes = (ComputeMode.STANDARD, *self.modes)
        results: Dict[ComputeMode, SimulationResult] = {}
        if parallel:
            workers = max_workers or min(len(all_modes), os.cpu_count() or 1)
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {
                    mode: pool.submit(_run_one_mode, sim, mode, n_steps)
                    for mode in all_modes
                }
                for mode, future in futures.items():
                    if progress is not None:
                        progress(mode)
                    results[mode] = future.result()
        else:
            for mode in all_modes:
                if progress is not None:
                    progress(mode)
                results[mode] = sim.run(mode=mode, n_steps=n_steps)
        deviations = deviation_from_reference(results, self.observables)
        return StudyResult(config=self.config, results=results, deviations=deviations)

    def run_distributed(
        self,
        n_steps: Optional[int] = None,
        seeds: Iterable[int] = (),
        n_workers: int = 2,
        queue_dir=None,
        inline: bool = False,
    ) -> "DistributedStudyResult":
        """The study as a :mod:`repro.distrib` job — one worker
        *process* per in-flight (mode, seed) trajectory, checkpointable
        via ``queue_dir``.  See :func:`run_distributed_study`."""
        return run_distributed_study(
            self.config,
            modes=self.modes,
            seeds=seeds,
            n_steps=n_steps,
            n_workers=n_workers,
            queue_dir=queue_dir,
            inline=inline,
        )


def _run_one_mode(
    sim: Simulation, mode: ComputeMode, n_steps: Optional[int]
) -> SimulationResult:
    """Worker body for the parallel study (module-level: picklable)."""
    return sim.run(mode=mode, n_steps=n_steps)


# ----------------------------------------------------------------------
# Distributed execution (repro.distrib).
# ----------------------------------------------------------------------

#: SimulationConfig fields a study cell can carry through the queue's
#: JSON manifest (plain scalars/tuples; ``laser``/``scf``/``storage``
#: are objects, so distributed studies are pinned to their
#: ``small_test`` defaults).
_JSON_CONFIG_FIELDS = (
    "ncells",
    "mesh_shape",
    "n_orb",
    "dt",
    "n_qd_steps",
    "nscf",
    "lattice",
    "move_ions",
    "jitter",
    "seed",
    "induced_field",
    "induced_coupling",
)


@dataclasses.dataclass
class DistributedStudyResult:
    """A study ensemble merged back from the distributed queue.

    Cells carry the observable columns (JSON floats round-trip
    exactly) plus a sha256 digest of their raw float64 bytes, so
    bitwise agreement with a serial :meth:`PrecisionStudy.run` is
    checkable without shipping wavefunctions between processes.
    """

    modes: tuple
    seeds: tuple
    merged: object  #: the underlying repro.distrib MergedResult

    def _payload(self, mode: ComputeMode, seed: Optional[int] = None) -> dict:
        seed = self.seeds[0] if seed is None else int(seed)
        key = f"study:{mode.env_value}:-:{seed}:-"
        return self.merged.cells[key]

    def column(self, observable: str, mode: ComputeMode, seed=None):
        """Observable column of one (mode, seed) trajectory."""
        import numpy as np

        payload = self._payload(mode, seed)
        return np.array(payload["columns"][observable], dtype=np.float64)

    def digest(self, mode: ComputeMode, seed=None) -> str:
        """sha256 over the trajectory's raw observable bytes."""
        return self._payload(mode, seed)["digest"]

    def max_deviation_table(self) -> List[tuple]:
        """(observable, mode, max |dev| vs FP32) rows, per seed-0 run —
        the same shape :meth:`StudyResult.max_deviation_table` returns."""
        import numpy as np

        rows = []
        for obs in OBSERVABLES:
            ref = self.column(obs, ComputeMode.STANDARD)
            for mode in self.modes:
                if mode is ComputeMode.STANDARD:
                    continue
                dev = np.abs(self.column(obs, mode) - ref)
                rows.append((obs, mode.env_value, float(dev.max())))
        return rows


def _small_test_overrides(config: SimulationConfig) -> Dict[str, object]:
    """Express ``config`` as ``small_test(**overrides)``, JSON-safely.

    Raises when the config differs from the ``small_test`` baseline in
    a non-serialisable field (laser pulse, SCF params, storage
    precision) — those runs must use the in-process paths.
    """
    base = SimulationConfig.small_test()
    for field in ("laser", "scf", "storage"):
        if getattr(config, field) != getattr(base, field):
            raise ValueError(
                f"distributed studies cannot serialise a custom {field!r}; "
                "use run() / run(parallel=True) for this configuration"
            )
    overrides: Dict[str, object] = {}
    for field in _JSON_CONFIG_FIELDS:
        value = getattr(config, field)
        if value != getattr(base, field):
            overrides[field] = list(value) if isinstance(value, tuple) else value
    return overrides


def run_distributed_study(
    config: SimulationConfig,
    modes: Iterable[ComputeMode] = STUDY_MODES,
    seeds: Iterable[int] = (),
    n_steps: Optional[int] = None,
    n_workers: int = 2,
    queue_dir=None,
    inline: bool = False,
) -> DistributedStudyResult:
    """Run a (mode x seed) study ensemble through :mod:`repro.distrib`.

    One queue cell per (mode, seed) trajectory — the FP32 reference is
    a cell like any other — sharded over ``n_workers`` worker
    processes.  Every cell re-runs the deterministic FP64 ground-state
    setup for its config, so trajectories are bitwise-identical to the
    serial path's (which shares one setup; determinism makes the two
    indistinguishable).  ``seeds`` defaults to the config's own seed;
    pass several for a trajectory ensemble — that axis is what the
    process pool scales that threads cannot.
    """
    all_modes = (ComputeMode.STANDARD, *tuple(modes))
    seeds = tuple(int(s) for s in seeds) or (int(config.seed),)
    from repro.distrib import SweepSpec, submit

    spec = SweepSpec(
        kind="study",
        modes=tuple(m.env_value for m in all_modes),
        seeds=seeds,
        params={"config": _small_test_overrides(config), "n_steps": n_steps},
    )
    handle = submit(spec, n_workers=n_workers, queue_dir=queue_dir, inline=inline)
    return DistributedStudyResult(modes=all_modes, seeds=seeds, merged=handle.result())
