"""Accuracy precision study: one system, every compute mode.

This orchestrates the paper's Artifact A2 workflow: run the identical
simulation once per ``MKL_BLAS_COMPUTE_MODE`` value (plus the FP32
reference) and extract the deviation of the key observables.  The
ground state is converged once (FP64 QXMD) and shared by every run,
exactly as re-running the same binary with a different environment
variable would.

The per-mode runs are embarrassingly parallel (the paper executes
them as independent jobs); ``run(parallel=True)`` distributes them
over a process pool and — because every run is bitwise deterministic —
produces exactly the serial results.
"""

from __future__ import annotations

import dataclasses
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Dict, Iterable, List, Optional

from repro.blas.modes import ComputeMode
from repro.core.deviation import OBSERVABLES, DeviationSeries, deviation_from_reference
from repro.dcmesh.simulation import Simulation, SimulationConfig, SimulationResult

__all__ = ["STUDY_MODES", "PAPER_STUDY_MODES", "PrecisionStudy", "StudyResult"]

#: The five alternative modes of Fig. 1, in the paper's order, plus
#: the post-paper rungs (Ozaki INT8 between BF16X2 and FP32 on the
#: analytic error ladder; emulated FP64 above everything).
STUDY_MODES = (
    ComputeMode.FLOAT_TO_BF16,
    ComputeMode.FLOAT_TO_BF16X2,
    ComputeMode.FLOAT_TO_BF16X3,
    ComputeMode.FLOAT_TO_TF32,
    ComputeMode.COMPLEX_3M,
    ComputeMode.OZAKI_INT8,
    ComputeMode.EMULATED_FP64,
)

#: The paper's original five (Fig. 1/2 pinning tests use these).
PAPER_STUDY_MODES = STUDY_MODES[:5]


@dataclasses.dataclass
class StudyResult:
    """All runs of a study plus their deviation series."""

    config: SimulationConfig
    results: Dict[ComputeMode, SimulationResult]
    deviations: Dict[str, List[DeviationSeries]]

    def series(self, observable: str, mode: ComputeMode) -> DeviationSeries:
        """Deviation series for one (observable, mode) pair."""
        for s in self.deviations[observable]:
            if s.mode is mode:
                return s
        raise KeyError(f"no deviation series for {observable}/{mode}")

    def max_deviation_table(self) -> List[tuple]:
        """(observable, mode, max deviation) rows — Fig. 1's headline
        numbers (e.g. the near-5-Hartree BF16 kinetic-energy case)."""
        rows = []
        for obs, series_list in self.deviations.items():
            for s in series_list:
                rows.append((obs, s.mode.env_value, s.max_deviation))
        return rows


class PrecisionStudy:
    """Run the full Fig. 1 / Fig. 2 accuracy sweep."""

    def __init__(
        self,
        config: SimulationConfig,
        modes: Iterable[ComputeMode] = STUDY_MODES,
        observables: Iterable[str] = OBSERVABLES,
    ):
        self.config = config
        self.modes = tuple(modes)
        self.observables = tuple(observables)
        if ComputeMode.STANDARD in self.modes:
            raise ValueError("STANDARD is the implicit reference; list only alternatives")

    def run(
        self,
        n_steps: Optional[int] = None,
        progress: Optional[Callable[[ComputeMode], None]] = None,
        parallel: bool = False,
        max_workers: Optional[int] = None,
    ) -> StudyResult:
        """Execute the reference plus every alternative-mode run.

        ``parallel=True`` fans the per-mode runs out over a process
        pool (one worker per mode by default, capped at the CPU
        count); results are bitwise identical to the serial path.
        """
        sim = Simulation(self.config)
        sim.setup()  # one shared FP64 ground state
        all_modes = (ComputeMode.STANDARD, *self.modes)
        results: Dict[ComputeMode, SimulationResult] = {}
        if parallel:
            workers = max_workers or min(len(all_modes), os.cpu_count() or 1)
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {
                    mode: pool.submit(_run_one_mode, sim, mode, n_steps)
                    for mode in all_modes
                }
                for mode, future in futures.items():
                    if progress is not None:
                        progress(mode)
                    results[mode] = future.result()
        else:
            for mode in all_modes:
                if progress is not None:
                    progress(mode)
                results[mode] = sim.run(mode=mode, n_steps=n_steps)
        deviations = deviation_from_reference(results, self.observables)
        return StudyResult(config=self.config, results=results, deviations=deviations)


def _run_one_mode(
    sim: Simulation, mode: ComputeMode, n_steps: Optional[int]
) -> SimulationResult:
    """Worker body for the parallel study (module-level: picklable)."""
    return sim.run(mode=mode, n_steps=n_steps)
