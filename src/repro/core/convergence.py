"""Numerical-convergence QA: mesh and orbital-count studies.

The paper fixes its discretisation (64^3 / 96^3 meshes, Table V); a
reproduction should demonstrate its substitute discretisation is in
the converged regime.  Two studies:

* :func:`mesh_convergence` — ground-state band energy vs mesh
  resolution at fixed physics.  With the spectral kinetic operator and
  Gaussian potentials the error decays faster than any power of ``h``
  once the grid resolves the narrowest Gaussian, so successive
  refinements must contract rapidly.
* :func:`orbital_convergence` — how many virtual orbitals the LFD
  dynamics needs: nexc as a function of ``N_orb`` at fixed excitation,
  converging once the optically-active manifold is covered.

Both return plain rows for the report layer and are exercised by the
test suite at small scale.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.dcmesh.material import build_pto_supercell
from repro.dcmesh.mesh import Mesh
from repro.dcmesh.projectors import build_projectors
from repro.dcmesh.scf import SCFParams, SCFSolver
from repro.dcmesh.simulation import Simulation, SimulationConfig

__all__ = ["mesh_convergence", "orbital_convergence"]


def mesh_convergence(
    mesh_sizes: Sequence[int] = (8, 10, 12, 16),
    ncells: tuple = (1, 1, 1),
    lattice: float = 6.5,
    n_orb: int = 20,
    scf_params: Optional[SCFParams] = None,
    seed: int = 0,
) -> List[Tuple[int, float, float]]:
    """(mesh size, band energy, |change from previous|) per resolution.

    The last column contracts as the mesh converges; the final row's
    change quantifies the discretisation error of the working grid.
    """
    params = scf_params or SCFParams(max_iter=120, tol=1e-7)
    material = build_pto_supercell(ncells, lattice)
    rows: List[Tuple[int, float, float]] = []
    prev: Optional[float] = None
    for size in mesh_sizes:
        mesh = Mesh((size, size, size), material.box)
        projectors = build_projectors(material, mesh)
        solver = SCFSolver(mesh, material, projectors, params)
        result = solver.solve(n_orb=n_orb, seed=seed)
        change = abs(result.band_energy - prev) if prev is not None else np.nan
        rows.append((size, result.band_energy, float(change)))
        prev = result.band_energy
    return rows


def orbital_convergence(
    n_orbs: Sequence[int] = (20, 24, 32),
    n_qd_steps: int = 40,
    seed: int = 7,
) -> List[Tuple[int, float, float]]:
    """(N_orb, final nexc, |change from previous|) per orbital count.

    Runs the same laser excitation with an increasing virtual manifold;
    nexc stabilises once the states the pulse can reach are included.
    """
    rows: List[Tuple[int, float, float]] = []
    prev: Optional[float] = None
    for n_orb in n_orbs:
        cfg = SimulationConfig.small_test(
            mesh_shape=(10, 10, 10), n_orb=n_orb,
            n_qd_steps=n_qd_steps, nscf=n_qd_steps, seed=seed,
        )
        result = Simulation(cfg).run(mode="STANDARD")
        nexc = float(result.records[-1].nexc)
        change = abs(nexc - prev) if prev is not None else np.nan
        rows.append((n_orb, nexc, float(change)))
        prev = nexc
    return rows
