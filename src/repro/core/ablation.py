"""Ablation studies for the design choices DESIGN.md calls out.

Five ablations, each isolating one mechanism the paper leans on:

* :func:`scf_cadence_ablation` — how the FP64 SCF reset period bounds
  the BF16 drift (Section V: "Updating the wavefunction with FP64
  precision prevents the buildup of truncation errors ... the
  fundamental reason why the code is able to run with alternative
  BLAS precision modes").
* :func:`split_terms_pareto` — the BF16x{1,2,3} accuracy/cost ladder.
* :func:`accumulation_precision_ablation` — why oneMKL accumulates
  component products in FP32: accumulate in BF16 instead and the error
  grows with k instead of staying flat.
* :func:`complex_3m_cancellation` — 3M's "different numeric
  cancellation behavior" under adversarial inputs.
* :func:`device_sensitivity` — how the Fig. 3b BF16 speedup moves as
  the calibrated bandwidth/power knobs are swept.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.blas.complex3m import gemm_3m, gemm_4m
from repro.blas.gemm import gemm
from repro.blas.modes import ComputeMode
from repro.blas.rounding import round_fp32_to_bf16
from repro.dcmesh.simulation import Simulation, SimulationConfig
from repro.gpu.gemm_model import GemmModel
from repro.gpu.specs import MAX_1550_STACK
from repro.types import Precision

__all__ = [
    "scf_cadence_ablation",
    "split_terms_pareto",
    "accumulation_precision_ablation",
    "complex_3m_cancellation",
    "device_sensitivity",
]


# ----------------------------------------------------------------------
# 1. SCF reset cadence.
# ----------------------------------------------------------------------


def scf_cadence_ablation(
    cadences: Sequence[int] = (10, 30, 60),
    n_steps: int = 60,
    mode: ComputeMode = ComputeMode.FLOAT_TO_BF16,
) -> List[Tuple[int, float, float]]:
    """(nscf, final Gram error, max |ekin dev|) per reset cadence.

    The Gram error — ``max |Psi^H Psi dV - I|`` of the final state —
    is the truncation buildup the paper's periodic FP64 SCF update
    exists to bound: without resets the slightly non-unitary BF16
    nonlocal corrections degrade orthonormality monotonically; each
    FP64 update repairs it.  The ekin deviation (vs a same-cadence
    FP32 reference) is reported alongside.  A cadence >= n_steps means
    "never reset".
    """
    rows = []
    for nscf in cadences:
        cfg = SimulationConfig.small_test(
            mesh_shape=(10, 10, 10), n_orb=20,
            n_qd_steps=n_steps, nscf=min(nscf, n_steps),
        )
        sim = Simulation(cfg)
        sim.setup()
        ref = sim.run(mode=ComputeMode.STANDARD)
        alt = sim.run(mode=mode)
        dev = np.abs(alt.column("ekin") - ref.column("ekin"))
        rows.append((nscf, alt.final_gram_error(), float(dev.max())))
    return rows


# ----------------------------------------------------------------------
# 2. Split-term Pareto.
# ----------------------------------------------------------------------


def split_terms_pareto(
    m: int = 128,
    n: int = 896,
    k: int = 262144,
    seed: int = 0,
) -> List[Tuple[str, float, float]]:
    """(mode, relative error, modelled seconds) for the BF16 family.

    The error is measured on a small same-shape-class GEMM (error is
    size-independent, Section V-B); the time comes from the device
    model at the requested paper-scale shape.
    """
    model = GemmModel()
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((96, 64)).astype(np.float32)
    b = rng.standard_normal((64, 80)).astype(np.float32)
    ref = a.astype(np.float64) @ b.astype(np.float64)
    scale = np.abs(ref).max()
    rows = []
    for mode in (
        ComputeMode.FLOAT_TO_BF16,
        ComputeMode.FLOAT_TO_BF16X2,
        ComputeMode.FLOAT_TO_BF16X3,
    ):
        err = float(np.abs(gemm(a, b, mode=mode) - ref).max() / scale)
        secs = model.seconds("cgemm", m, n, k, mode)
        rows.append((mode.env_value, err, secs))
    return rows


# ----------------------------------------------------------------------
# 3. Accumulation precision.
# ----------------------------------------------------------------------


def _bf16_gemm_bf16_accumulate(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """BF16 GEMM that (wrongly) also rounds every partial sum to BF16.

    Hardware never does this — XMX accumulates in FP32 — but it is the
    counterfactual that shows why: the error now grows with k.
    """
    a = round_fp32_to_bf16(a)
    b = round_fp32_to_bf16(b)
    m, k = a.shape
    n = b.shape[1]
    out = np.zeros((m, n), dtype=np.float32)
    # Chunked accumulation with BF16 rounding between chunks models a
    # BF16 accumulator without a python-loop-per-element blowup.
    chunk = 8
    for start in range(0, k, chunk):
        out = round_fp32_to_bf16(out + a[:, start:start + chunk] @ b[start:start + chunk, :])
    return out


def accumulation_precision_ablation(
    ks: Sequence[int] = (32, 256, 2048),
    seed: int = 0,
) -> List[Tuple[int, float, float]]:
    """(k, fp32-accumulate error, bf16-accumulate error) vs inner size."""
    rng = np.random.default_rng(seed)
    rows = []
    for k in ks:
        a = rng.uniform(0.5, 1.5, (32, k)).astype(np.float32)
        b = rng.uniform(0.5, 1.5, (k, 32)).astype(np.float32)
        ref = a.astype(np.float64) @ b.astype(np.float64)
        scale = np.abs(ref).max()
        good = float(np.abs(
            gemm(a, b, mode=ComputeMode.FLOAT_TO_BF16).astype(np.float64) - ref
        ).max() / scale)
        bad = float(np.abs(
            _bf16_gemm_bf16_accumulate(a, b).astype(np.float64) - ref
        ).max() / scale)
        rows.append((k, good, bad))
    return rows


# ----------------------------------------------------------------------
# 4. 3M cancellation stress.
# ----------------------------------------------------------------------


def complex_3m_cancellation(
    k: int = 256,
    trials: int = 20,
    seed: int = 0,
) -> Dict[str, float]:
    """Worst-case imaginary-part error of 3M vs 4M on adversarial data.

    Inputs are built so the imaginary part of every product nearly
    cancels (``a ~ conj(b)``) while the real magnitudes are large —
    exactly the regime where 3M's ``t3 - t1 - t2`` recombination loses
    bits that 4M's direct ``Ar Bi + Ai Br`` keeps.
    """
    rng = np.random.default_rng(seed)
    worst3 = worst4 = 0.0
    for _ in range(trials):
        re = rng.uniform(100.0, 1000.0, (8, k)).astype(np.float32)
        im = rng.uniform(-1e-3, 1e-3, (8, k)).astype(np.float32)
        a = (re + 1j * im).astype(np.complex64)
        b = (re.T - 1j * im.T).astype(np.complex64)
        ref = a.astype(np.complex128) @ b.astype(np.complex128)
        scale = max(np.abs(ref.imag).max(), 1e-30)
        worst3 = max(worst3, float(np.abs(gemm_3m(a, b).imag - ref.imag).max() / scale))
        worst4 = max(worst4, float(np.abs(gemm_4m(a, b).imag - ref.imag).max() / scale))
    return {"gemm_3m": worst3, "gemm_4m": worst4}


# ----------------------------------------------------------------------
# 5. Device-model sensitivity.
# ----------------------------------------------------------------------


def device_sensitivity(
    bandwidth_efficiencies: Sequence[float] = (0.5, 0.7, 0.9),
    bf16_caps: Sequence[float] = (0.25, 0.45, 0.65),
) -> List[Tuple[float, float, float]]:
    """(bw_eff, bf16_cap, BF16 speedup at the Table VI anchor shape).

    Shows which calibrated knob the 3.91x anchor actually responds to:
    the anchor call is memory-bound, so the bandwidth efficiency moves
    it and the power cap barely does.
    """
    rows = []
    base = MAX_1550_STACK
    for bw in bandwidth_efficiencies:
        for cap in bf16_caps:
            derates = dict(base.power_derate)
            derates[Precision.BF16] = cap
            spec = dataclasses.replace(
                base, bandwidth_efficiency=bw, power_derate=derates
            )
            model = GemmModel(spec)
            s = model.speedup_vs_fp32(
                "cgemm", 128, 3968, 262144, ComputeMode.FLOAT_TO_BF16
            )
            rows.append((bw, cap, s))
    return rows
