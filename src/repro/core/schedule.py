"""Analytic per-QD-step kernel schedule of the LFD phase.

One QD step of DCMESH issues exactly nine BLAS calls (artifact: "Each
QD step contains 9 BLAS calls") plus a fixed set of streaming kernels
(split-operator phases, FFT passes, observable reductions).  This
module describes that schedule *symbolically*, so paper-scale timing
(Fig. 3a: 96^3 mesh, 1024 orbitals) can be evaluated on the device
model without allocating a 7 GB wavefunction.

An integration test cross-checks this schedule against the verbose log
of an actual small simulation step, so the dry-run timing and the real
code path cannot drift apart.
"""

from __future__ import annotations

import dataclasses
from typing import List, Tuple

from repro.types import Precision, complex_dtype

__all__ = ["GemmCall", "StreamPass", "qd_step_schedule", "psi_bytes"]


@dataclasses.dataclass(frozen=True)
class GemmCall:
    """One BLAS level-3 call of the step."""

    routine: str
    m: int
    n: int
    k: int
    site: str


@dataclasses.dataclass(frozen=True)
class StreamPass:
    """One streaming (non-BLAS) kernel: ``passes`` sweeps of the
    wavefunction buffer."""

    name: str
    passes: int
    site: str


def psi_bytes(n_grid: int, n_orb: int, storage: Precision) -> int:
    """Size of the ``N_grid x N_orb`` wavefunction matrix in bytes."""
    import numpy as np

    return n_grid * n_orb * np.dtype(complex_dtype(storage)).itemsize


def qd_step_schedule(
    n_grid: int,
    n_orb: int,
    n_occ: int,
    storage: Precision = Precision.FP32,
) -> Tuple[List[GemmCall], List[StreamPass]]:
    """Kernel schedule of one observed QD step.

    Returns ``(gemms, streams)``: the nine BLAS calls (three per
    BLASified function, with the Table VII shapes) and the streaming
    passes of the split-operator propagation plus observables.
    """
    if not 0 < n_occ < n_orb:
        raise ValueError(f"need 0 < n_occ < n_orb, got n_occ={n_occ}, n_orb={n_orb}")
    if n_grid < 1:
        raise ValueError(f"n_grid must be positive, got {n_grid}")
    routine = "zgemm" if storage is Precision.FP64 else "cgemm"
    n_virt = n_orb - n_occ

    gemms = [
        # nlp_prop: Eq. 1 subspace correction.
        GemmCall(routine, n_orb, n_orb, n_grid, "nlp_prop"),
        GemmCall(routine, n_orb, n_orb, n_orb, "nlp_prop"),
        GemmCall(routine, n_grid, n_orb, n_orb, "nlp_prop"),
        # calc_energy: kinetic + subspace nonlocal energies.
        GemmCall(routine, n_orb, n_orb, n_grid, "calc_energy"),
        GemmCall(routine, n_orb, n_orb, n_grid, "calc_energy"),
        GemmCall(routine, n_orb, n_orb, n_orb, "calc_energy"),
        # remap_occ: Table VII headline shape first.
        GemmCall(routine, n_occ, n_virt, n_grid, "remap_occ"),
        GemmCall(routine, n_occ, n_occ, n_grid, "remap_occ"),
        GemmCall(routine, n_occ, n_occ, n_virt, "remap_occ"),
    ]

    streams = [
        # Split-operator propagation (LFDPropagator.step).
        StreamPass("vloc_kick", 2, "lfd_step"),
        StreamPass("fft_forward", 6, "lfd_step"),
        StreamPass("kinetic_phase", 2, "lfd_step"),
        StreamPass("fft_inverse", 6, "lfd_step"),
        StreamPass("vloc_kick", 2, "lfd_step"),
        # calc_energy's spectral kinetic application + density.
        StreamPass("fft_energy", 12, "calc_energy"),
        StreamPass("density_pot", 2, "calc_energy"),
        # current_density's spectral momentum sum.
        StreamPass("fft_current", 8, "current_density"),
    ]
    return gemms, streams
