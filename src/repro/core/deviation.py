"""Deviation-from-reference accuracy series (Figs. 1 and 2).

"The difference in the value of the outputs between the alternate
precision and that of FP32 were extracted and plotted over time."
(Section V-A.)  The reference precision is FP32 with no alternative
mode.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List

import numpy as np

from repro.blas.modes import ComputeMode
from repro.dcmesh.simulation import SimulationResult

__all__ = ["DeviationSeries", "deviation_from_reference", "OBSERVABLES"]

#: The three observables of Fig. 1 (a: nexc, b: javg, c: ekin).
OBSERVABLES = ("nexc", "javg", "ekin")


@dataclasses.dataclass
class DeviationSeries:
    """|observable(mode) - observable(FP32)| over simulation time."""

    observable: str
    mode: ComputeMode
    time_fs: np.ndarray
    deviation: np.ndarray            #: absolute deviation from FP32
    reference: np.ndarray            #: the FP32 series itself

    def __post_init__(self) -> None:
        if self.time_fs.shape != self.deviation.shape:
            raise ValueError(
                f"time axis {self.time_fs.shape} and deviation "
                f"{self.deviation.shape} differ"
            )

    @property
    def max_deviation(self) -> float:
        return float(self.deviation.max()) if self.deviation.size else 0.0

    @property
    def final_deviation(self) -> float:
        return float(self.deviation[-1]) if self.deviation.size else 0.0

    def relative(self) -> np.ndarray:
        """Deviation relative to the reference magnitude (paper: "the
        deviations relative to the absolute values of each metric are
        ... in the order of 1%")."""
        scale = np.maximum(np.abs(self.reference), np.finfo(np.float64).tiny)
        return self.deviation / scale

    def log10(self, floor: float = 1e-300) -> np.ndarray:
        """``log10`` of the deviation — the Fig. 2 transform."""
        return np.log10(np.maximum(self.deviation, floor))


def deviation_from_reference(
    results: Dict[ComputeMode, SimulationResult],
    observables: Iterable[str] = OBSERVABLES,
    reference_mode: ComputeMode = ComputeMode.STANDARD,
) -> Dict[str, List[DeviationSeries]]:
    """Build the Fig. 1 deviation series for every non-reference mode.

    All runs must share the same step grid (the methodology guarantees
    this: identical computations, only BLAS modes differ).
    """
    if reference_mode not in results:
        raise ValueError(f"reference mode {reference_mode} missing from results")
    ref = results[reference_mode]
    time_fs = ref.column("time_fs")
    out: Dict[str, List[DeviationSeries]] = {}
    for obs in observables:
        ref_col = ref.column(obs)
        series: List[DeviationSeries] = []
        for mode, res in results.items():
            if mode is reference_mode:
                continue
            col = res.column(obs)
            if col.shape != ref_col.shape:
                raise ValueError(
                    f"{mode} run has {col.shape[0]} records, reference has "
                    f"{ref_col.shape[0]}: runs are not comparable"
                )
            series.append(
                DeviationSeries(
                    observable=obs,
                    mode=mode,
                    time_fs=time_fs,
                    deviation=np.abs(col - ref_col),
                    reference=ref_col,
                )
            )
        out[obs] = series
    return out
