"""Plain-text and CSV rendering for experiment outputs.

Every experiment script renders its table/series through these
helpers, so EXPERIMENTS.md and the bench logs share one format.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Any, Iterable, List, Sequence, Union

__all__ = ["render_table", "write_csv", "format_value"]

PathLike = Union[str, Path]


def format_value(v: Any) -> str:
    """Uniform cell formatting: floats to 4 significant digits."""
    if isinstance(v, bool):
        return str(v)
    if isinstance(v, float):
        if v == 0:
            return "0"
        av = abs(v)
        if 1e-3 <= av < 1e5:
            return f"{v:.4g}"
        return f"{v:.3e}"
    return str(v)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: str = "",
) -> str:
    """Fixed-width text table."""
    str_rows: List[List[str]] = [[format_value(c) for c in row] for row in rows]
    if any(len(r) != len(headers) for r in str_rows):
        raise ValueError("row width does not match headers")
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def write_csv(path: PathLike, headers: Sequence[str], rows: Iterable[Sequence[Any]]) -> None:
    """Write rows to a CSV file (creates parent directories)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(list(headers))
        for row in rows:
            writer.writerow(list(row))
