"""The paper's study itself — the primary contribution layer.

* :mod:`repro.core.theoretical` — the static tables (I, II, IV).
* :mod:`repro.core.schedule` — the per-QD-step kernel schedule of
  DCMESH's LFD phase, used to evaluate paper-scale timings without
  allocating paper-scale arrays.
* :mod:`repro.core.study` — accuracy study: run every compute mode on
  the same system, collect observables (Figs. 1-2).
* :mod:`repro.core.deviation` — deviation-from-FP32 series.
* :mod:`repro.core.perfstudy` — end-to-end QD-step timing per mode
  (Fig. 3a).
* :mod:`repro.core.blas_sweep` — per-call BLAS speedups vs orbital
  count (Fig. 3b, Tables VI-VII).
* :mod:`repro.core.error_model` — Section V-B's analytic rounding
  error bound and its empirical verification.
* :mod:`repro.core.report` — plain-text/CSV rendering of the rows the
  paper prints.
"""

from repro.core.theoretical import (
    table1_rows,
    table2_rows,
    table3_rows,
    table4_rows,
    table5_rows,
)
from repro.core.schedule import GemmCall, StreamPass, qd_step_schedule
from repro.core.deviation import DeviationSeries, deviation_from_reference
from repro.core.study import PrecisionStudy, StudyResult
from repro.core.perfstudy import PerfStudy, StepTiming
from repro.core.blas_sweep import BlasSweep, SweepPoint
from repro.core.error_model import (
    multiplication_error_bound,
    observed_gemm_relative_error,
)
from repro.core.ablation import (
    accumulation_precision_ablation,
    complex_3m_cancellation,
    device_sensitivity,
    scf_cadence_ablation,
    split_terms_pareto,
)
from repro.core.error_budget import (
    DriftFit,
    budget_table,
    fit_drift,
    per_step_state_error,
)
from repro.core.convergence import mesh_convergence, orbital_convergence
from repro.core.plots import ascii_plot, plot_deviation_series
from repro.core.report import render_table, write_csv

__all__ = [
    "table1_rows",
    "table2_rows",
    "table3_rows",
    "table4_rows",
    "table5_rows",
    "GemmCall",
    "StreamPass",
    "qd_step_schedule",
    "DeviationSeries",
    "deviation_from_reference",
    "PrecisionStudy",
    "StudyResult",
    "PerfStudy",
    "StepTiming",
    "BlasSweep",
    "SweepPoint",
    "multiplication_error_bound",
    "observed_gemm_relative_error",
    "accumulation_precision_ablation",
    "complex_3m_cancellation",
    "device_sensitivity",
    "scf_cadence_ablation",
    "split_terms_pareto",
    "DriftFit",
    "budget_table",
    "fit_drift",
    "per_step_state_error",
    "mesh_convergence",
    "orbital_convergence",
    "ascii_plot",
    "plot_deviation_series",
    "render_table",
    "write_csv",
]
