"""Per-call BLAS speedup sweep over orbital counts (Fig. 3b, Tables VI-VII).

Artifact A3: run the 40-atom system at N_orb in {256, 1024, 2048,
4096} under ``MKL_VERBOSE=2`` and compare the remap_occ GEMM timing of
each compute mode against FP32.  Table VII documents the GEMM shape:
``m = 128`` (occupied orbitals), ``k = 64^3`` (the mesh) and ``n``
tracking the virtual block.

Two evaluation paths are provided:

* **model** — the Max 1550 device model (the numbers the reproduction
  reports at paper scale);
* **software** — wall-clock of the actual software emulation on small
  shapes (used by the pytest benchmarks to show the *relative*
  component-count costs: x3 runs ~6 GEMMs per GEMM, 3M saves one of
  four).
"""

from __future__ import annotations

import dataclasses
import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, TypeVar

from repro.blas.modes import ComputeMode
from repro.core.theoretical import peak_theoretical_speedup
from repro.gpu.gemm_model import GemmModel
from repro.gpu.specs import DeviceSpec, MAX_1550_STACK
from repro.telemetry.registry import active as _telemetry_active

__all__ = [
    "SweepPoint",
    "BlasSweep",
    "FIG3B_NORBS",
    "remap_gemm_shape",
    "SWEEP_MODES",
    "PAPER_SWEEP_MODES",
    "parallel_mode_sweep",
]

_T = TypeVar("_T")


def parallel_mode_sweep(
    worker: Callable[[ComputeMode], _T],
    modes: Optional[Iterable[ComputeMode]] = None,
    max_workers: Optional[int] = None,
) -> List[_T]:
    """Evaluate ``worker(mode)`` for every mode concurrently.

    The compute modes are independent of each other — each run reads
    its own inputs and the mode is passed *explicitly* (never via the
    thread-local ambient mode), so fanning them out over a thread pool
    is safe; NumPy's BLAS releases the GIL inside the matmuls.  Results
    come back in mode order, exactly like the serial loop.

    Backend selection *is* thread-scoped (``use_backend``), so the
    caller's ambient backend is captured at submission and re-entered
    in each worker — a sweep inside ``use_backend("torch")`` runs every
    mode on torch, same as the serial loop.
    """
    modes = list(SWEEP_MODES if modes is None else modes)
    if not modes:
        return []

    def run_one(mode: ComputeMode) -> _T:
        # Per-mode span so a sweep's phase structure shows up in the
        # exported traces; a plain passthrough while telemetry is off.
        t = _telemetry_active()
        if t is None:
            return worker(mode)
        with t.span(
            "mode_sweep", cat="sweep", mode=getattr(mode, "env_value", str(mode))
        ):
            return worker(mode)

    workers = max_workers or min(len(modes), os.cpu_count() or 1)
    if workers <= 1 or len(modes) == 1:
        return [run_one(m) for m in modes]

    from repro.blas.backend import active_backend, use_backend

    ambient = active_backend()

    def run_pooled(mode: ComputeMode) -> _T:
        with use_backend(ambient):
            return run_one(mode)

    with ThreadPoolExecutor(max_workers=workers) as pool:
        futures = [pool.submit(run_pooled, m) for m in modes]
        return [f.result() for f in futures]

#: Orbital counts of Fig. 3b / Table VII.
FIG3B_NORBS = (256, 1024, 2048, 4096)

#: Modes compared against FP32 in Fig. 3b — the paper's five plus the
#: post-paper split rungs (Ozaki INT8 and emulated FP64), which appear
#: in every sweep artifact the paper modes do.
SWEEP_MODES = (
    ComputeMode.FLOAT_TO_BF16,
    ComputeMode.FLOAT_TO_BF16X2,
    ComputeMode.FLOAT_TO_BF16X3,
    ComputeMode.FLOAT_TO_TF32,
    ComputeMode.COMPLEX_3M,
    ComputeMode.OZAKI_INT8,
    ComputeMode.EMULATED_FP64,
)

#: The paper's original five (Tables VI/VII pin these exactly).
PAPER_SWEEP_MODES = SWEEP_MODES[:5]

#: The 40-atom system's occupied-orbital count and mesh size.
_N_OCC_40 = 128
_N_GRID_40 = 64**3


def remap_gemm_shape(n_orb: int, n_occ: int = _N_OCC_40, n_grid: int = _N_GRID_40):
    """Table VII: (m, n, k) of the remap_occ GEMM at ``n_orb`` orbitals.

    ``m`` stays pinned at the occupied count, ``k`` at the mesh size;
    only ``n`` (the virtual block) grows with the orbital count.
    """
    if n_orb <= n_occ:
        raise ValueError(f"n_orb={n_orb} must exceed n_occ={n_occ}")
    return (n_occ, n_orb - n_occ, n_grid)


@dataclasses.dataclass(frozen=True)
class SweepPoint:
    """One (N_orb, mode) cell of Fig. 3b."""

    n_orb: int
    mode: ComputeMode
    m: int
    n: int
    k: int
    fp32_seconds: float
    mode_seconds: float

    @property
    def speedup(self) -> float:
        return self.fp32_seconds / self.mode_seconds


class BlasSweep:
    """Evaluates the Fig. 3b sweep and the Table VI maxima."""

    def __init__(self, spec: DeviceSpec = MAX_1550_STACK, routine: str = "cgemm"):
        self.spec = spec
        self.model = GemmModel(spec)
        self.routine = routine

    def sweep(
        self,
        norbs: Sequence[int] = FIG3B_NORBS,
        modes: Iterable[ComputeMode] = SWEEP_MODES,
        max_workers: Optional[int] = None,
    ) -> List[SweepPoint]:
        """All Fig. 3b points on the device model.

        ``max_workers > 1`` fans the (independent) modes out over a
        thread pool via :func:`parallel_mode_sweep`; the returned point
        order is identical to the serial evaluation.
        """
        modes = list(modes)

        def eval_mode(mode: ComputeMode) -> List[SweepPoint]:
            points: List[SweepPoint] = []
            for n_orb in norbs:
                m, n, k = remap_gemm_shape(n_orb)
                fp32 = self.model.seconds(self.routine, m, n, k, ComputeMode.STANDARD)
                alt = self.model.seconds(self.routine, m, n, k, mode)
                t = _telemetry_active()
                if t is not None:
                    # Device-model evaluations are not emulation calls;
                    # they get their own counter series.
                    t.count("blas.model_calls", 2, routine=self.routine,
                            mode=mode.env_value)
                points.append(
                    SweepPoint(
                        n_orb=n_orb, mode=mode, m=m, n=n, k=k,
                        fp32_seconds=fp32, mode_seconds=alt,
                    )
                )
            return points

        # Serial unless explicitly asked (None -> 1): keeps the default
        # behaviour identical to the historical loop.
        per_mode = parallel_mode_sweep(eval_mode, modes, max_workers=max_workers or 1)
        # Reassemble in the serial loop's (n_orb-major) order.
        by_mode = dict(zip(modes, per_mode))
        return [
            by_mode[mode][i]
            for i in range(len(list(norbs)))
            for mode in modes
        ]

    def sweep_distributed(
        self,
        norbs: Sequence[int] = FIG3B_NORBS,
        modes: Iterable[ComputeMode] = SWEEP_MODES,
        n_workers: int = 2,
        queue_dir=None,
        inline: bool = False,
    ) -> List[SweepPoint]:
        """:meth:`sweep` evaluated by the :mod:`repro.distrib` engine.

        The (mode, N_orb) grid becomes one queue cell per point,
        sharded over ``n_workers`` local worker processes (or drained
        in-process with ``inline=True``); the merged points are
        bitwise-identical to the serial :meth:`sweep` — same model
        evaluation per cell, floats round-tripped exactly through the
        queue's JSON records, reassembled in the same n_orb-major
        order (the ``distrib-serial-equivalence`` claim).  Pass a
        shared ``queue_dir`` to checkpoint the sweep or to let workers
        on other hosts join (``python -m repro.distrib.worker``).
        """
        if self.spec is not MAX_1550_STACK:
            raise ValueError(
                "sweep_distributed evaluates the default Max 1550 device "
                "model in its workers; custom DeviceSpecs must use sweep()"
            )
        from repro.distrib import SweepSpec, submit

        spec = SweepSpec(
            kind="sweep",
            modes=tuple(m.env_value for m in modes),
            norbs=tuple(int(n) for n in norbs),
            params={"routine": self.routine},
        )
        handle = submit(
            spec, n_workers=n_workers, queue_dir=queue_dir, inline=inline
        )
        return handle.result().sweep_points()

    def table6(
        self,
        norbs: Sequence[int] = FIG3B_NORBS,
        modes: Iterable[ComputeMode] = PAPER_SWEEP_MODES,
    ) -> List[Tuple[str, float, float]]:
        """Table VI: (mode, max observed speedup, peak theoretical).

        "Maximum observed" is over the orbital sweep, exactly as the
        paper takes its 3.91x from the largest N_orb case.  Defaults to
        the paper's five modes — ``EMULATED_FP64``'s theoretical column
        is quoted against native FP64, so mixing it into this table
        would compare two different baselines (the extended modes live
        in :func:`repro.core.theoretical.table2_extended_rows` and the
        full Fig. 3b sweep instead).
        """
        points = self.sweep(norbs, modes)
        best: Dict[ComputeMode, float] = {}
        for p in points:
            best[p.mode] = max(best.get(p.mode, 0.0), p.speedup)
        return [
            (mode.env_value, best[mode], peak_theoretical_speedup(mode, self.spec))
            for mode in modes
        ]

    def table7(self, norbs: Sequence[int] = FIG3B_NORBS) -> List[Tuple[int, int, int, int]]:
        """Table VII: (N_orb, m, n, k) of the remap_occ GEMM."""
        return [(n_orb, *remap_gemm_shape(n_orb)) for n_orb in norbs]

    def sweep_software(
        self,
        norbs: Sequence[int] = (256, 512),
        modes: Iterable[ComputeMode] = SWEEP_MODES,
        shrink: int = 512,
        repeats: int = 3,
        seed: int = 0,
        max_workers: Optional[int] = None,
    ) -> List[SweepPoint]:
        """Fig. 3b evaluated by *actually timing the software emulation*
        on shrunken shapes (``k`` divided by ``shrink``).

        This path measures a different thing than the device model: on
        a CPU the split modes cost extra component products rather than
        saving silicon, so mode "speedups" come out *below* one in
        proportion to their product counts — which is itself a useful
        check that the emulation does the work it claims.

        ``max_workers > 1`` times the modes concurrently (they are
        independent; each call passes its mode explicitly).  Use it for
        throughput when scanning many shapes — for publication-grade
        wall-clock numbers keep the default serial path, where timings
        cannot contend for cores.
        """
        import time

        import numpy as np

        from repro.blas.gemm import gemm

        modes = list(modes)
        rng = np.random.default_rng(seed)
        points: List[SweepPoint] = []
        for n_orb in norbs:
            m, n, k = remap_gemm_shape(n_orb)
            k = max(k // shrink, 8)
            a = (rng.standard_normal((m, k)) + 1j * rng.standard_normal((m, k))).astype(np.complex64)
            b = (rng.standard_normal((k, n)) + 1j * rng.standard_normal((k, n))).astype(np.complex64)

            def best_time(mode):
                best = float("inf")
                for _ in range(repeats):
                    t0 = time.perf_counter()
                    gemm(a, b, mode=mode)
                    best = min(best, time.perf_counter() - t0)
                return best

            fp32 = best_time(ComputeMode.STANDARD)
            mode_seconds = parallel_mode_sweep(
                best_time, modes, max_workers=max_workers or 1
            )
            for mode, secs in zip(modes, mode_seconds):
                points.append(
                    SweepPoint(
                        n_orb=n_orb, mode=mode, m=m, n=n, k=k,
                        fp32_seconds=fp32, mode_seconds=secs,
                    )
                )
        return points
