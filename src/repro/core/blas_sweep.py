"""Per-call BLAS speedup sweep over orbital counts (Fig. 3b, Tables VI-VII).

Artifact A3: run the 40-atom system at N_orb in {256, 1024, 2048,
4096} under ``MKL_VERBOSE=2`` and compare the remap_occ GEMM timing of
each compute mode against FP32.  Table VII documents the GEMM shape:
``m = 128`` (occupied orbitals), ``k = 64^3`` (the mesh) and ``n``
tracking the virtual block.

Two evaluation paths are provided:

* **model** — the Max 1550 device model (the numbers the reproduction
  reports at paper scale);
* **software** — wall-clock of the actual software emulation on small
  shapes (used by the pytest benchmarks to show the *relative*
  component-count costs: x3 runs ~6 GEMMs per GEMM, 3M saves one of
  four).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.blas.modes import ComputeMode
from repro.core.theoretical import peak_theoretical_speedup
from repro.gpu.gemm_model import GemmModel
from repro.gpu.specs import DeviceSpec, MAX_1550_STACK

__all__ = ["SweepPoint", "BlasSweep", "FIG3B_NORBS", "remap_gemm_shape", "SWEEP_MODES"]

#: Orbital counts of Fig. 3b / Table VII.
FIG3B_NORBS = (256, 1024, 2048, 4096)

#: Modes compared against FP32 in Fig. 3b.
SWEEP_MODES = (
    ComputeMode.FLOAT_TO_BF16,
    ComputeMode.FLOAT_TO_BF16X2,
    ComputeMode.FLOAT_TO_BF16X3,
    ComputeMode.FLOAT_TO_TF32,
    ComputeMode.COMPLEX_3M,
)

#: The 40-atom system's occupied-orbital count and mesh size.
_N_OCC_40 = 128
_N_GRID_40 = 64**3


def remap_gemm_shape(n_orb: int, n_occ: int = _N_OCC_40, n_grid: int = _N_GRID_40):
    """Table VII: (m, n, k) of the remap_occ GEMM at ``n_orb`` orbitals.

    ``m`` stays pinned at the occupied count, ``k`` at the mesh size;
    only ``n`` (the virtual block) grows with the orbital count.
    """
    if n_orb <= n_occ:
        raise ValueError(f"n_orb={n_orb} must exceed n_occ={n_occ}")
    return (n_occ, n_orb - n_occ, n_grid)


@dataclasses.dataclass(frozen=True)
class SweepPoint:
    """One (N_orb, mode) cell of Fig. 3b."""

    n_orb: int
    mode: ComputeMode
    m: int
    n: int
    k: int
    fp32_seconds: float
    mode_seconds: float

    @property
    def speedup(self) -> float:
        return self.fp32_seconds / self.mode_seconds


class BlasSweep:
    """Evaluates the Fig. 3b sweep and the Table VI maxima."""

    def __init__(self, spec: DeviceSpec = MAX_1550_STACK, routine: str = "cgemm"):
        self.spec = spec
        self.model = GemmModel(spec)
        self.routine = routine

    def sweep(
        self,
        norbs: Sequence[int] = FIG3B_NORBS,
        modes: Iterable[ComputeMode] = SWEEP_MODES,
    ) -> List[SweepPoint]:
        """All Fig. 3b points on the device model."""
        points: List[SweepPoint] = []
        for n_orb in norbs:
            m, n, k = remap_gemm_shape(n_orb)
            fp32 = self.model.seconds(self.routine, m, n, k, ComputeMode.STANDARD)
            for mode in modes:
                alt = self.model.seconds(self.routine, m, n, k, mode)
                points.append(
                    SweepPoint(
                        n_orb=n_orb, mode=mode, m=m, n=n, k=k,
                        fp32_seconds=fp32, mode_seconds=alt,
                    )
                )
        return points

    def table6(
        self,
        norbs: Sequence[int] = FIG3B_NORBS,
        modes: Iterable[ComputeMode] = SWEEP_MODES,
    ) -> List[Tuple[str, float, float]]:
        """Table VI: (mode, max observed speedup, peak theoretical).

        "Maximum observed" is over the orbital sweep, exactly as the
        paper takes its 3.91x from the largest N_orb case.
        """
        points = self.sweep(norbs, modes)
        best: Dict[ComputeMode, float] = {}
        for p in points:
            best[p.mode] = max(best.get(p.mode, 0.0), p.speedup)
        return [
            (mode.env_value, best[mode], peak_theoretical_speedup(mode, self.spec))
            for mode in modes
        ]

    def table7(self, norbs: Sequence[int] = FIG3B_NORBS) -> List[Tuple[int, int, int, int]]:
        """Table VII: (N_orb, m, n, k) of the remap_occ GEMM."""
        return [(n_orb, *remap_gemm_shape(n_orb)) for n_orb in norbs]

    def sweep_software(
        self,
        norbs: Sequence[int] = (256, 512),
        modes: Iterable[ComputeMode] = SWEEP_MODES,
        shrink: int = 512,
        repeats: int = 3,
        seed: int = 0,
    ) -> List[SweepPoint]:
        """Fig. 3b evaluated by *actually timing the software emulation*
        on shrunken shapes (``k`` divided by ``shrink``).

        This path measures a different thing than the device model: on
        a CPU the split modes cost extra component products rather than
        saving silicon, so mode "speedups" come out *below* one in
        proportion to their product counts — which is itself a useful
        check that the emulation does the work it claims.
        """
        import time

        import numpy as np

        from repro.blas.gemm import gemm

        rng = np.random.default_rng(seed)
        points: List[SweepPoint] = []
        for n_orb in norbs:
            m, n, k = remap_gemm_shape(n_orb)
            k = max(k // shrink, 8)
            a = (rng.standard_normal((m, k)) + 1j * rng.standard_normal((m, k))).astype(np.complex64)
            b = (rng.standard_normal((k, n)) + 1j * rng.standard_normal((k, n))).astype(np.complex64)

            def best_time(mode):
                best = float("inf")
                for _ in range(repeats):
                    t0 = time.perf_counter()
                    gemm(a, b, mode=mode)
                    best = min(best, time.perf_counter() - t0)
                return best

            fp32 = best_time(ComputeMode.STANDARD)
            for mode in modes:
                points.append(
                    SweepPoint(
                        n_orb=n_orb, mode=mode, m=m, n=n, k=k,
                        fp32_seconds=fp32, mode_seconds=best_time(mode),
                    )
                )
        return points
