"""ASCII time-series plots for terminal reproduction of Figs. 1-2.

No plotting stack is assumed offline; these renderers give the
experiment scripts legible curves in a terminal: a multi-series line
plot on linear or log10 axes, with per-series markers and a legend.
The CSV outputs remain the canonical data for real figures.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

__all__ = ["ascii_plot", "plot_deviation_series"]

_MARKERS = "*o+x#@%&"


def ascii_plot(
    x: Sequence[float],
    series: Dict[str, Sequence[float]],
    width: int = 72,
    height: int = 18,
    logy: bool = False,
    title: str = "",
    ylabel: str = "",
    floor: float = 1e-30,
) -> str:
    """Render one or more y(x) series as ASCII.

    Parameters
    ----------
    x:
        Shared x grid (monotone).
    series:
        label -> y values (same length as ``x``).
    logy:
        Plot ``log10(max(y, floor))`` instead of y.
    """
    x = np.asarray(x, dtype=float)
    if x.ndim != 1 or len(x) < 2:
        raise ValueError("x must be a 1-D grid with at least 2 points")
    if not series:
        raise ValueError("no series to plot")
    ys = {}
    for label, y in series.items():
        y = np.asarray(y, dtype=float)
        if y.shape != x.shape:
            raise ValueError(
                f"series {label!r} has shape {y.shape}, x has {x.shape}"
            )
        ys[label] = np.log10(np.maximum(y, floor)) if logy else y

    y_all = np.concatenate(list(ys.values()))
    y_lo, y_hi = float(y_all.min()), float(y_all.max())
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    x_lo, x_hi = float(x.min()), float(x.max())

    grid = [[" "] * width for _ in range(height)]

    def col(xv: float) -> int:
        return int(round((xv - x_lo) / (x_hi - x_lo) * (width - 1)))

    def row(yv: float) -> int:
        return int(round((y_hi - yv) / (y_hi - y_lo) * (height - 1)))

    for idx, (label, y) in enumerate(ys.items()):
        marker = _MARKERS[idx % len(_MARKERS)]
        for xv, yv in zip(x, y):
            grid[row(yv)][col(xv)] = marker

    lines = []
    if title:
        lines.append(title)
    axis_label = f"log10 {ylabel}".strip() if logy else ylabel
    top = f"{y_hi:+.3g}"
    bottom = f"{y_lo:+.3g}"
    pad = max(len(top), len(bottom))
    for r, rowchars in enumerate(grid):
        prefix = top if r == 0 else (bottom if r == height - 1 else "")
        lines.append(f"{prefix:>{pad}} |" + "".join(rowchars))
    lines.append(" " * pad + " +" + "-" * width)
    lines.append(
        " " * pad + f"  {x_lo:g}" + " " * max(width - 16, 1) + f"{x_hi:g}"
    )
    if axis_label:
        lines.append(f"y: {axis_label}")
    legend = "  ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={label}" for i, label in enumerate(ys)
    )
    lines.append(legend)
    return "\n".join(lines)


def plot_deviation_series(
    deviations,
    observable: str,
    logy: bool = True,
    width: int = 72,
    height: int = 16,
) -> str:
    """Plot one observable's deviation series (Figs. 1-2 style).

    ``deviations`` is the dict produced by
    :func:`repro.core.deviation.deviation_from_reference`.
    """
    series_list = deviations[observable]
    if not series_list:
        raise ValueError(f"no series for observable {observable!r}")
    x = series_list[0].time_fs
    series = {s.mode.env_value: s.deviation for s in series_list}
    return ascii_plot(
        x,
        series,
        width=width,
        height=height,
        logy=logy,
        title=f"deviation from FP32: {observable}",
        ylabel=f"|d {observable}|",
    )
