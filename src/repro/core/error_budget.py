"""Error budget: from per-call BLAS bounds to simulation drift.

Section V-B gives the per-GEMM relative error of each compute mode;
Fig. 1 shows the resulting observable drift over 21 000 steps.  This
module connects the two ends:

* :func:`per_step_state_error` — the expected relative perturbation
  one ``nlp_prop`` application injects into the wavefunction: the
  mode's effective GEMM error scaled by the size of the nonlocal
  correction (``~ dt * ||H_nl||``, since the correction is
  ``(e^{-i dt H_nl} - 1) ~ -i dt H_nl``);
* :func:`fit_drift` — a power-law fit ``dev(t) ~ A * step^alpha`` to a
  measured deviation series (``alpha ~ 0.5`` for random-walk error
  accumulation, ``~ 1`` for coherent drift);
* :func:`budget_table` — per-mode rows combining the prediction with
  the measurement, verifying that the *ordering and ratios* of the
  measured drifts track the analytic per-call bounds (the sense in
  which the paper's Fig. 1 is "explained" by its Section V-B).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence

import numpy as np

from repro.blas.modes import ComputeMode
from repro.core.deviation import DeviationSeries
from repro.core.error_model import mode_effective_error

__all__ = [
    "per_step_state_error",
    "DriftFit",
    "fit_drift",
    "budget_table",
]


def per_step_state_error(
    mode: ComputeMode,
    dt: float,
    h_nl_norm: float,
) -> float:
    """Expected relative state perturbation per nlp_prop application.

    ``eps_mode * |dt| * ||H_nl||``: the GEMM error acts on a correction
    of that magnitude relative to the unit-norm wavefunction.
    """
    if dt < 0 or h_nl_norm < 0:
        raise ValueError("dt and h_nl_norm must be non-negative")
    return mode_effective_error(mode) * dt * h_nl_norm


@dataclasses.dataclass(frozen=True)
class DriftFit:
    """Power-law fit ``dev ~ amplitude * step^exponent``."""

    amplitude: float
    exponent: float
    r_squared: float

    def predict(self, step: np.ndarray) -> np.ndarray:
        return self.amplitude * np.asarray(step, dtype=float) ** self.exponent


def fit_drift(
    deviation: Sequence[float],
    skip: int = 1,
    floor: float = 1e-300,
) -> DriftFit:
    """Log-log least-squares fit of a deviation series vs step index.

    ``skip`` drops the leading samples (step 0 deviates by exactly
    zero).  Returns amplitude, exponent and the fit's R^2.
    """
    dev = np.asarray(deviation, dtype=float)
    if dev.ndim != 1 or len(dev) - skip < 4:
        raise ValueError("need at least 4 usable samples to fit a drift law")
    steps = np.arange(len(dev))[skip:]
    y = np.log(np.maximum(dev[skip:], floor))
    x = np.log(steps)
    slope, intercept = np.polyfit(x, y, 1)
    resid = y - (slope * x + intercept)
    ss_tot = float(((y - y.mean()) ** 2).sum())
    r2 = 1.0 - float((resid**2).sum()) / ss_tot if ss_tot > 0 else 1.0
    return DriftFit(amplitude=float(np.exp(intercept)), exponent=float(slope),
                    r_squared=r2)


def budget_table(
    deviations: Dict[ComputeMode, DeviationSeries],
    dt: float,
    h_nl_norm: float,
) -> List[tuple]:
    """Per-mode rows: (mode, predicted eps/step, measured final dev,
    drift exponent, amplification).

    ``amplification`` = measured final deviation / (predicted per-step
    error x number of steps): how much the dynamics magnify or average
    out the raw injection.  Comparable across modes — if the §V-B
    bounds explain Fig. 1, the amplification is roughly
    mode-independent.
    """
    rows = []
    for mode, series in deviations.items():
        predicted = per_step_state_error(mode, dt, h_nl_norm)
        n_steps = max(len(series.deviation) - 1, 1)
        fit = fit_drift(series.deviation)
        final = series.final_deviation
        amp = final / (predicted * n_steps) if predicted > 0 else np.inf
        rows.append((mode.env_value, predicted, final, fit.exponent, amp))
    return rows
