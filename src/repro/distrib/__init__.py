"""Distributed sweep/ensemble engine: sharded work queue + merge.

The paper's artifacts are grids of independent cells — (mode x N_orb x
trajectory-seed x experiment) — which the serial paths evaluate inside
one process.  This package explodes such a grid into :class:`Cell`
records, shards them across worker *processes* through a file-backed
work queue, and merges the results into the same artifacts the serial
path produces, bitwise-identically (pinned by the
``distrib-serial-equivalence`` claim and the golden test in
``tests/integration/test_distrib_engine.py``).

Layers, bottom-up:

``repro.distrib.cells``
    The unit of work: spec -> cell explosion, plus the cell bodies
    (``run_cell``) every worker executes.

``repro.distrib.queue``
    The file-backed queue: one ``manifest.json``, atomic
    lease/renew/complete records under ``leases/``, per-worker
    append-only JSONL results and telemetry shards.  Crash-safe by
    construction — a restarted driver skips completed cells and
    re-leases expired ones, and a truncated trailing JSONL record is
    dropped (and counted) rather than fatal.

``repro.distrib.worker``
    The worker loop and its CLI (``python -m repro.distrib.worker
    --queue DIR``).  Spawn-safe: a worker needs only the queue
    directory, so multi-host launch is just more processes pointed at
    a shared directory.  Idle workers speculatively re-issue
    long-leased cells (work-stealing); duplicates are discarded by
    cell key at merge time, first completion wins.

``repro.distrib.collector``
    Ambient-environment capture/re-entry (``REPRO_TELEMETRY``,
    ``REPRO_BACKEND``, ``REPRO_OZAKI_SLICES``, ``REPRO_DRIFT``, ...)
    so processes inherit exactly what threads do for free, plus the
    per-cell telemetry stream and its cross-worker merge
    (``distrib.*`` counters, per-shard attribution).

``repro.distrib.driver``
    The async API: ``submit(spec) -> JobHandle`` with ``status()`` /
    ``wait()`` / ``result()``, ``resume(queue_dir)`` for
    checkpoint/resume, and the result merge.

See ``docs/DISTRIBUTED.md`` for the queue format, the lease protocol
and the multi-host recipe.
"""

from repro.distrib.cells import Cell, SweepSpec, run_cell
from repro.distrib.collector import CAPTURED_ENV_VARS, apply_captured_env, capture_env
from repro.distrib.driver import (
    IncompleteJobError,
    JobHandle,
    JobStatus,
    MergedResult,
    merge_results,
    resume,
    submit,
)
from repro.distrib.queue import WorkQueue

__all__ = [
    "Cell",
    "SweepSpec",
    "run_cell",
    "WorkQueue",
    "CAPTURED_ENV_VARS",
    "capture_env",
    "apply_captured_env",
    "submit",
    "resume",
    "merge_results",
    "JobHandle",
    "JobStatus",
    "MergedResult",
    "IncompleteJobError",
]
