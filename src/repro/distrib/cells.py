"""The unit of distributed work: sweep specs, cells, and cell bodies.

A :class:`SweepSpec` describes a grid of independent evaluations; its
:meth:`~SweepSpec.cells` explosion produces one :class:`Cell` per grid
point.  Cells are plain JSON-safe records (never pickles), so a worker
on another host can reconstruct them from the queue's ``manifest.json``
alone.

:func:`run_cell` is the single dispatch point every worker executes.
Heavy imports (numpy, the simulation, the experiment registry) happen
*inside* the kind branches so that a worker processing synthetic cells
never pays for them — this keeps worker start-up cheap enough that the
engine wins on small grids too.

Determinism contract: the ``sweep`` / ``study`` / ``experiment`` cell
bodies are the *same code* the serial paths run, with the cell's
parameters passed explicitly (never via ambient mutable state), and
JSON round-trips Python floats exactly (``json.loads(json.dumps(x)) ==
x`` bitwise for finite floats).  Merged distributed artifacts are
therefore bitwise-identical to the serial ones — pinned by the
``distrib-serial-equivalence`` claim.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import time
from typing import Dict, List, Optional, Tuple

__all__ = ["CELL_KINDS", "Cell", "SweepSpec", "run_cell"]

#: Recognised cell kinds (see :func:`run_cell` for the bodies).
CELL_KINDS = ("sweep", "study", "experiment", "probe", "synthetic")


@dataclasses.dataclass(frozen=True)
class Cell:
    """One grid point of a sweep/ensemble: the unit of lease and merge.

    Every axis is optional — a kind uses the axes that apply to it and
    leaves the rest ``None``.  The :attr:`key` is the stable identity
    duplicates are discarded by.
    """

    kind: str
    mode: Optional[str] = None  #: ComputeMode.env_value, never the enum
    n_orb: Optional[int] = None
    seed: Optional[int] = None
    experiment: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in CELL_KINDS:
            raise ValueError(
                f"unknown cell kind {self.kind!r}; valid: {', '.join(CELL_KINDS)}"
            )

    @property
    def key(self) -> str:
        """Stable cell identity, e.g. ``sweep:FLOAT_TO_BF16:1024:0:-``."""
        parts = (self.kind, self.mode, self.n_orb, self.seed, self.experiment)
        return ":".join("-" if v is None else str(v) for v in parts)

    def to_json(self) -> dict:
        return {
            "kind": self.kind,
            "mode": self.mode,
            "n_orb": self.n_orb,
            "seed": self.seed,
            "experiment": self.experiment,
        }

    @classmethod
    def from_json(cls, data: dict) -> "Cell":
        return cls(
            kind=data["kind"],
            mode=data.get("mode"),
            n_orb=data.get("n_orb"),
            seed=data.get("seed"),
            experiment=data.get("experiment"),
        )


@dataclasses.dataclass
class SweepSpec:
    """A grid of independent cells plus the knobs their bodies need.

    ``params`` must stay JSON-safe — it is stored verbatim in the
    queue manifest and handed to :func:`run_cell` in every worker.
    """

    kind: str = "sweep"
    modes: Tuple[str, ...] = ()
    norbs: Tuple[int, ...] = ()
    seeds: Tuple[int, ...] = (0,)
    experiments: Tuple[str, ...] = ()
    n_cells: int = 0  #: grid size for synthetic/probe kinds
    params: Dict[str, object] = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in CELL_KINDS:
            raise ValueError(
                f"unknown spec kind {self.kind!r}; valid: {', '.join(CELL_KINDS)}"
            )
        self.modes = tuple(str(m) for m in self.modes)
        self.norbs = tuple(int(n) for n in self.norbs)
        self.seeds = tuple(int(s) for s in self.seeds)
        self.experiments = tuple(str(e) for e in self.experiments)

    def cells(self) -> List[Cell]:
        """Explode the grid, in the canonical (manifest) order.

        The order is deterministic so a resumed driver reconstructs
        the identical cell list; merge-time reordering (e.g. into the
        serial sweep's n_orb-major layout) happens on top of it.
        """
        if self.kind == "experiment":
            if not self.experiments:
                raise ValueError("experiment spec needs at least one experiment id")
            return [Cell(kind=self.kind, experiment=e) for e in self.experiments]
        if self.kind in ("synthetic", "probe"):
            if self.n_cells < 1:
                raise ValueError(f"{self.kind} spec needs n_cells >= 1")
            return [Cell(kind=self.kind, seed=i) for i in range(self.n_cells)]
        if self.kind == "study":
            if not self.modes:
                raise ValueError("study spec needs at least one mode")
            return [
                Cell(kind=self.kind, mode=m, seed=s)
                for s in self.seeds
                for m in self.modes
            ]
        # "sweep": mode x n_orb x seed.
        if not self.modes or not self.norbs:
            raise ValueError("sweep spec needs modes and norbs")
        return [
            Cell(kind=self.kind, mode=m, n_orb=n, seed=s)
            for s in self.seeds
            for n in self.norbs
            for m in self.modes
        ]

    def to_json(self) -> dict:
        return {
            "kind": self.kind,
            "modes": list(self.modes),
            "norbs": list(self.norbs),
            "seeds": list(self.seeds),
            "experiments": list(self.experiments),
            "n_cells": self.n_cells,
            "params": dict(self.params),
        }

    @classmethod
    def from_json(cls, data: dict) -> "SweepSpec":
        return cls(
            kind=data["kind"],
            modes=tuple(data.get("modes", ())),
            norbs=tuple(data.get("norbs", ())),
            seeds=tuple(data.get("seeds", (0,))),
            experiments=tuple(data.get("experiments", ())),
            n_cells=int(data.get("n_cells", 0)),
            params=dict(data.get("params", {})),
        )


# ----------------------------------------------------------------------
# Cell bodies.
# ----------------------------------------------------------------------


def _run_sweep_cell(cell: Cell, params: dict) -> dict:
    """One (mode, n_orb) point of the Fig. 3b device-model sweep.

    The body mirrors ``BlasSweep.sweep``'s per-point evaluation line
    for line (same model, same telemetry counter), so the merged grid
    is the serial sweep, bit for bit.
    """
    from repro.blas.modes import ComputeMode
    from repro.core.blas_sweep import remap_gemm_shape
    from repro.gpu.gemm_model import GemmModel
    from repro.telemetry.registry import active as _telemetry_active

    routine = str(params.get("routine", "cgemm"))
    mode = ComputeMode.parse(cell.mode)
    m, n, k = remap_gemm_shape(int(cell.n_orb))
    model = GemmModel()
    fp32 = model.seconds(routine, m, n, k, ComputeMode.STANDARD)
    alt = model.seconds(routine, m, n, k, mode)
    t = _telemetry_active()
    if t is not None:
        t.count("blas.model_calls", 2, routine=routine, mode=mode.env_value)
    return {
        "n_orb": int(cell.n_orb),
        "mode": mode.env_value,
        "m": m,
        "n": n,
        "k": k,
        "fp32_seconds": fp32,
        "mode_seconds": alt,
    }


def _run_study_cell(cell: Cell, params: dict) -> dict:
    """One (mode, seed) trajectory of a precision-study ensemble.

    Returns the observable columns (JSON floats round-trip exactly)
    plus a digest of their raw bytes, so equivalence with a serial run
    is checkable without shipping the wavefunction.
    """
    from repro.blas.modes import ComputeMode
    from repro.dcmesh.simulation import Simulation, SimulationConfig

    overrides = dict(params.get("config", {}))
    for key in ("ncells", "mesh_shape"):
        if key in overrides:
            overrides[key] = tuple(overrides[key])
    if cell.seed is not None:
        overrides["seed"] = int(cell.seed)
    config = SimulationConfig.small_test(**overrides)
    sim = Simulation(config)
    sim.setup()
    n_steps = params.get("n_steps")
    result = sim.run(
        mode=ComputeMode.parse(cell.mode),
        n_steps=None if n_steps is None else int(n_steps),
    )
    columns = {
        obs: [float(v) for v in result.column(obs)]
        for obs in ("nexc", "javg", "ekin")
    }
    digest = hashlib.sha256()
    for obs in ("nexc", "javg", "ekin"):
        digest.update(result.column(obs).astype("float64").tobytes())
    return {
        "mode": cell.mode,
        "seed": cell.seed,
        "columns": columns,
        "digest": digest.hexdigest(),
        "wall_seconds": result.wall_seconds,
    }


def _run_experiment_cell(cell: Cell, params: dict) -> dict:
    """One experiment-registry artifact (the ``runner --distrib`` path).

    Output files (CSVs, figures) are written straight into the shared
    ``output_dir`` — per-experiment filenames are disjoint, so workers
    never contend, and re-executions of deterministic artifacts
    rewrite identical bytes.
    """
    from repro.experiments.registry import run_experiment

    result = run_experiment(
        cell.experiment,
        fast=bool(params.get("fast", True)),
        output_dir=params.get("output_dir"),
    )
    return {"experiment": cell.experiment, "text": result["text"]}


def _run_probe_cell(cell: Cell, params: dict) -> dict:
    """Report the ambient execution environment a worker re-entered.

    Used by the env-propagation regression tests: the driver captures
    backend/telemetry/precision state, the worker re-applies it, and
    this cell proves what actually took effect — including one real
    (tiny) GEMM so the telemetry stream carries correctly-labelled
    ``blas.calls`` for the cell.
    """
    import numpy as np

    from repro.blas.backend import active_backend
    from repro.blas.gemm import sgemm
    from repro.blas.modes import MKL_COMPUTE_MODE_ENV, get_ozaki_slices
    from repro.core.scheduler import adaptive_enabled
    from repro.telemetry.drift import drift_enabled
    from repro.telemetry.registry import telemetry_enabled

    rng = np.random.default_rng(int(cell.seed or 0))
    a = rng.standard_normal((16, 16)).astype(np.float32)
    sgemm(a, a)
    return {
        "index": cell.seed,
        "backend": active_backend().cache_key,
        "ozaki_slices": get_ozaki_slices(),
        "telemetry": telemetry_enabled(),
        "drift": drift_enabled(),
        "adaptive": adaptive_enabled(),
        "mode_env": os.environ.get(MKL_COMPUTE_MODE_ENV, ""),
        "pid": os.getpid(),
    }


def _run_synthetic_cell(cell: Cell, params: dict) -> dict:
    """A cell with a fixed service time (engine benchmarks and tests).

    The body blocks without burning host CPU, modelling device- or
    IO-bound cells, so scheduler behaviour (sharding, stealing, resume)
    is measurable independently of the host's core count.
    """
    seconds = float(params.get("cell_seconds", 0.05))
    if seconds > 0.0:
        time.sleep(seconds)
    return {"index": cell.seed, "slept": seconds, "pid": os.getpid()}


_BODIES = {
    "sweep": _run_sweep_cell,
    "study": _run_study_cell,
    "experiment": _run_experiment_cell,
    "probe": _run_probe_cell,
    "synthetic": _run_synthetic_cell,
}


def run_cell(cell: Cell, params: Optional[dict] = None) -> dict:
    """Execute one cell body; returns its JSON-safe result payload."""
    return _BODIES[cell.kind](cell, params or {})
