"""The distributed worker: lease loop, heartbeat, work-stealing, CLI.

A worker needs exactly one thing — the queue directory::

    python -m repro.distrib.worker --queue /shared/queue --worker-id w0

which makes multi-host launch trivial: point more processes at a
directory every host can mount.  On start-up the worker re-applies the
environment the driver captured into the manifest
(:func:`repro.distrib.collector.apply_captured_env`), so backend /
compute-mode / telemetry / drift state match the submitting process —
the process analogue of what ``parallel_mode_sweep`` does for threads.

The loop, each pass over the manifest order:

1. **claim** — take the first unleased (or expired-lease) incomplete
   cell; run it while a daemon heartbeat renews the lease at a third
   of its duration, so a *slow* cell never expires — only a *dead*
   worker's lease does.
2. **steal** — if nothing was claimable, speculatively re-issue the
   oldest still-leased incomplete cell older than the manifest's
   ``steal_after_seconds`` (one marker per worker per cell, so idle
   re-scans never pile on).  The thief runs without holding the lease;
   first completion wins at merge, duplicates are discarded by key.
3. **idle** — nothing to claim or steal: short sleep, re-scan; exit
   when every cell has a completion record.

Results and per-cell telemetry are appended to this worker's *own*
JSONL shards, so there is no cross-process append race by design.
"""

from __future__ import annotations

import argparse
import os
import socket
import threading
import time
from typing import Optional

from repro.distrib.cells import Cell, run_cell
from repro.distrib.collector import apply_captured_env, snapshot_cell_telemetry
from repro.distrib.queue import WorkQueue

__all__ = ["run_worker", "main"]

#: Idle-poll interval while waiting for claimable or stealable work.
POLL_SECONDS = 0.05


def default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


def _run_one(
    queue: WorkQueue,
    worker_id: str,
    index: int,
    attempt: int,
    stolen: bool,
    takeover: bool,
    stall_key: Optional[str],
    stall_seconds: float,
) -> None:
    """Execute one cell and append its result + telemetry records."""
    from repro.telemetry import registry

    cell: Cell = queue.cells[index]
    if stall_key is not None and stall_key in cell.key and not stolen:
        # Test hook: act as a straggler.  The heartbeat (when leased)
        # keeps the lease alive, so only work-stealing can recover the
        # idle tail this stall creates.
        time.sleep(stall_seconds)
    telemetry_on = os.environ.get(registry.TELEMETRY_ENV, "").strip() not in ("", "0")
    collector = registry.enable(registry.Telemetry()) if telemetry_on else None
    start = time.perf_counter()
    try:
        result = run_cell(cell, dict(queue.spec.params))
    finally:
        if collector is not None:
            registry.disable()
    seconds = time.perf_counter() - start
    if collector is not None:
        queue.record_telemetry(
            worker_id,
            snapshot_cell_telemetry(collector, cell.key, worker_id, attempt, seconds),
        )
    queue.record_result(
        worker_id,
        index,
        result,
        seconds,
        attempt=attempt,
        stolen=stolen,
        takeover=takeover,
    )


def run_worker(
    queue_dir,
    worker_id: Optional[str] = None,
    max_cells: Optional[int] = None,
    stall_key: Optional[str] = None,
    stall_seconds: float = 0.0,
    apply_env: bool = True,
) -> int:
    """Drain ``queue_dir`` until every cell is complete.

    Returns the number of cells this worker executed.  ``max_cells``
    bounds that count (inline/test use); ``apply_env=False`` skips the
    manifest-env re-entry for in-process callers that already carry
    the ambient state.
    """
    queue = WorkQueue(queue_dir)
    worker_id = worker_id or default_worker_id()
    if apply_env:
        apply_captured_env(queue.env)
    executed = 0
    while max_cells is None or executed < max_cells:
        done = queue.completed_keys()
        if len(done) >= len(queue.cells):
            break
        todo = [i for i, c in enumerate(queue.cells) if c.key not in done]
        progressed = False
        # Pass 1: claim a vacant or expired lease.
        for index in todo:
            outcome = queue.try_claim(index, worker_id)
            if outcome.status != "claimed":
                continue
            stop_heartbeat = threading.Event()

            def _heartbeat(idx: int = index) -> None:
                interval = queue.lease_seconds / 3.0
                while not stop_heartbeat.wait(interval):
                    if not queue.renew(idx, worker_id):
                        return  # lease lost to a takeover; let merge decide

            beat = threading.Thread(target=_heartbeat, daemon=True)
            beat.start()
            try:
                _run_one(
                    queue,
                    worker_id,
                    index,
                    attempt=outcome.attempt,
                    stolen=False,
                    takeover=outcome.takeover,
                    stall_key=stall_key,
                    stall_seconds=stall_seconds,
                )
            finally:
                stop_heartbeat.set()
            executed += 1
            progressed = True
            break
        if progressed:
            continue
        # Pass 2: steal the oldest long-held straggler.
        index = _pick_steal(queue, todo, worker_id)
        if index is not None:
            _run_one(
                queue,
                worker_id,
                index,
                attempt=0,  # attempt 0 marks a speculative run
                stolen=True,
                takeover=False,
                stall_key=stall_key,
                stall_seconds=stall_seconds,
            )
            executed += 1
            continue
        time.sleep(POLL_SECONDS)
    return executed


def _pick_steal(queue: WorkQueue, todo, worker_id: str) -> Optional[int]:
    """The oldest stealable straggler, or ``None``.

    Stealable: incomplete, actively leased by *another* worker for
    longer than ``steal_after_seconds``, and not already re-issued by
    this worker (the ``O_EXCL`` marker enforces one steal per worker
    per cell).
    """
    if queue.steal_after is None:
        return None
    now = time.time()
    best: Optional[int] = None
    best_age = -1.0
    for index in todo:
        lease = queue.read_lease(index)
        if lease is None or lease.get("worker") == worker_id:
            continue
        if float(lease.get("deadline_unix", 0.0)) <= now:
            continue  # expired: the claim pass handles takeovers
        age = now - float(lease.get("claimed_unix", now))
        if age <= queue.steal_after:
            continue
        if age > best_age:
            best, best_age = index, age
    if best is not None and queue.try_steal(best, worker_id):
        return best
    return None


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.distrib.worker",
        description="Drain a repro.distrib work queue until every cell is done.",
    )
    parser.add_argument("--queue", required=True, help="queue directory")
    parser.add_argument(
        "--worker-id", default=None, help="shard label (default: <host>-<pid>)"
    )
    parser.add_argument(
        "--max-cells", type=int, default=None, help="stop after N cells (testing)"
    )
    parser.add_argument(
        "--stall-key",
        default=None,
        help="straggler injection: sleep --stall-seconds before any "
        "claimed cell whose key contains this substring (testing)",
    )
    parser.add_argument("--stall-seconds", type=float, default=0.0)
    args = parser.parse_args(argv)
    run_worker(
        args.queue,
        worker_id=args.worker_id,
        max_cells=args.max_cells,
        stall_key=args.stall_key,
        stall_seconds=args.stall_seconds,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
