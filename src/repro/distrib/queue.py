"""File-backed work queue with atomic leases and JSONL result shards.

Layout of a queue directory (every file is plain JSON/JSONL, so the
queue is inspectable with ``cat`` and shareable over any filesystem
both hosts can mount)::

    queue/
      manifest.json            # spec, captured env, cell list, lease policy
      leases/
        cell-000007.json       # current lease: worker, deadline, attempt
        cell-000007.steal-w1   # speculative re-issue marker (empty)
      results/
        w0.jsonl               # append-only completion records, one owner
      telemetry/
        w0.jsonl               # per-cell telemetry snapshots, one owner

Atomicity rules (POSIX-local, no locks held across work):

* **manifest** and **lease** writes go through write-to-temp +
  ``os.replace`` — readers see the old or the new record, never a
  torn one.
* **lease claims** race through ``O_CREAT | O_EXCL`` — exactly one
  worker wins a vacant lease.  Expired-lease takeovers use replace;
  a takeover race produces duplicate execution, which the merge
  discards by cell key (first completion wins).
* **results/telemetry shards** are append-only and single-writer
  (one file per worker), so no cross-process append race exists at
  all.  A crash can truncate at most the trailing record of a shard;
  readers drop undecodable lines and count them
  (``distrib.corrupt_records``) instead of failing — the affected
  cell simply runs again.

This is the substrate of checkpoint/resume: completion state lives
only in the shards, so a restarted driver (or a brand-new worker on
another host) reconstructs exactly what is done by re-reading them.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.distrib.cells import Cell, SweepSpec

__all__ = ["QueueError", "WorkQueue", "ClaimOutcome", "read_jsonl_tolerant"]

PathLike = Union[str, Path]

MANIFEST_NAME = "manifest.json"
LEASES_DIR = "leases"
RESULTS_DIR = "results"
TELEMETRY_DIR = "telemetry"

MANIFEST_VERSION = 1

#: Default lease duration; a worker renews at a third of this.
DEFAULT_LEASE_SECONDS = 30.0


class QueueError(RuntimeError):
    """A queue directory is missing, already initialised, or unusable."""


def _atomic_write(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` via a same-directory temp + replace."""
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    tmp.write_text(text)
    os.replace(tmp, path)


def _read_json_tolerant(path: Path) -> Optional[dict]:
    """Parse one JSON file; ``None`` when missing or undecodable."""
    try:
        text = path.read_text()
    except OSError:
        return None
    try:
        data = json.loads(text)
    except json.JSONDecodeError:
        return None
    return data if isinstance(data, dict) else None


def read_jsonl_tolerant(path: Path) -> Tuple[List[dict], int]:
    """All decodable records of a JSONL file plus the corrupt-line count.

    A crash mid-append leaves at most a truncated trailing line; any
    undecodable line is dropped and counted rather than raised, so a
    resumed run degrades to re-executing the affected cell.
    """
    try:
        text = path.read_text()
    except OSError:
        return [], 0
    records: List[dict] = []
    corrupt = 0
    for line in text.splitlines():
        if not line.strip():
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError:
            corrupt += 1
            continue
        if isinstance(obj, dict):
            records.append(obj)
        else:
            corrupt += 1
    return records, corrupt


@dataclasses.dataclass(frozen=True)
class ClaimOutcome:
    """What :meth:`WorkQueue.try_claim` found at the lease file."""

    status: str  #: "claimed" | "held"
    attempt: int = 1
    takeover: bool = False  #: claimed by replacing an expired lease
    corrupt: bool = False  #: the previous lease record was undecodable
    holder: Optional[str] = None  #: current holder when status == "held"
    age: float = 0.0  #: seconds since the held lease was claimed


@dataclasses.dataclass
class ShardStats:
    """Merge-time accounting derived from the result shards."""

    completed: int = 0
    duplicates: int = 0
    corrupt_records: int = 0
    steals: int = 0
    lease_takeovers: int = 0
    #: worker -> {"cells", "steals", "lease_takeovers", "worker_seconds"}
    per_worker: Dict[str, Dict[str, float]] = dataclasses.field(default_factory=dict)


class WorkQueue:
    """One sharded job: a manifest plus lease/result/telemetry state."""

    def __init__(self, root: PathLike):
        self.root = Path(root)
        manifest = _read_json_tolerant(self.root / MANIFEST_NAME)
        if manifest is None:
            raise QueueError(
                f"{self.root} is not a work queue (no readable {MANIFEST_NAME})"
            )
        self.manifest = manifest
        self.spec = SweepSpec.from_json(manifest["spec"])
        self.env: Dict[str, str] = dict(manifest.get("env", {}))
        self.lease_seconds = float(manifest.get("lease_seconds", DEFAULT_LEASE_SECONDS))
        raw_steal = manifest.get("steal_after_seconds")
        self.steal_after: Optional[float] = (
            None if raw_steal is None else float(raw_steal)
        )
        self.cells: List[Cell] = [Cell.from_json(c) for c in manifest["cells"]]
        keys = [c.key for c in self.cells]
        if len(set(keys)) != len(keys):
            raise QueueError("manifest contains duplicate cell keys")
        self._index_by_key = {key: i for i, key in enumerate(keys)}

    # -- construction --------------------------------------------------

    @classmethod
    def create(
        cls,
        root: PathLike,
        spec: SweepSpec,
        env: Optional[Dict[str, str]] = None,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
        steal_after: Union[float, None, str] = "auto",
    ) -> "WorkQueue":
        """Initialise a queue directory for ``spec``.

        ``steal_after="auto"`` (the default) arms work-stealing at half
        the lease duration; ``None`` disables speculative re-issue
        entirely (stragglers then recover only through lease expiry).
        """
        root = Path(root)
        if (root / MANIFEST_NAME).exists():
            raise QueueError(f"{root} already contains a {MANIFEST_NAME}")
        if lease_seconds <= 0:
            raise ValueError(f"lease_seconds must be positive, got {lease_seconds}")
        if steal_after == "auto":
            steal_after = lease_seconds / 2.0
        for sub in (LEASES_DIR, RESULTS_DIR, TELEMETRY_DIR):
            (root / sub).mkdir(parents=True, exist_ok=True)
        manifest = {
            "version": MANIFEST_VERSION,
            "created_unix": time.time(),
            "lease_seconds": float(lease_seconds),
            "steal_after_seconds": None if steal_after is None else float(steal_after),
            "env": dict(env or {}),
            "spec": spec.to_json(),
            "cells": [c.to_json() for c in spec.cells()],
        }
        _atomic_write(root / MANIFEST_NAME, json.dumps(manifest, indent=1))
        return cls(root)

    # -- paths ---------------------------------------------------------

    def lease_path(self, index: int) -> Path:
        return self.root / LEASES_DIR / f"cell-{index:06d}.json"

    def steal_marker_path(self, index: int, worker: str) -> Path:
        return self.root / LEASES_DIR / f"cell-{index:06d}.steal-{worker}"

    def results_path(self, worker: str) -> Path:
        return self.root / RESULTS_DIR / f"{worker}.jsonl"

    def telemetry_path(self, worker: str) -> Path:
        return self.root / TELEMETRY_DIR / f"{worker}.jsonl"

    def index_of(self, key: str) -> int:
        return self._index_by_key[key]

    # -- lease protocol ------------------------------------------------

    def read_lease(self, index: int) -> Optional[dict]:
        return _read_json_tolerant(self.lease_path(index))

    def try_claim(
        self, index: int, worker: str, now: Optional[float] = None
    ) -> ClaimOutcome:
        """Attempt to lease cell ``index`` for ``worker``.

        Vacant lease: won through ``O_CREAT | O_EXCL`` (exactly one
        winner).  Expired or undecodable lease: taken over via atomic
        replace — a takeover race can duplicate execution, never lose
        it.  An active lease held elsewhere returns ``"held"``.
        """
        now = time.time() if now is None else now
        path = self.lease_path(index)
        record = {
            "cell": self.cells[index].key,
            "index": index,
            "worker": worker,
            "claimed_unix": now,
            "deadline_unix": now + self.lease_seconds,
            "attempt": 1,
        }
        try:
            fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL)
        except FileExistsError:
            pass
        else:
            with os.fdopen(fd, "w") as fh:
                fh.write(json.dumps(record))
            return ClaimOutcome(status="claimed", attempt=1)
        prev = _read_json_tolerant(path)
        if prev is not None and float(prev.get("deadline_unix", 0.0)) > now:
            return ClaimOutcome(
                status="held",
                attempt=int(prev.get("attempt", 1)),
                holder=prev.get("worker"),
                age=now - float(prev.get("claimed_unix", now)),
            )
        corrupt = prev is None
        record["attempt"] = 1 if corrupt else int(prev.get("attempt", 1)) + 1
        _atomic_write(path, json.dumps(record))
        return ClaimOutcome(
            status="claimed",
            attempt=record["attempt"],
            takeover=True,
            corrupt=corrupt,
        )

    def renew(self, index: int, worker: str, now: Optional[float] = None) -> bool:
        """Extend ``worker``'s lease on ``index``; False if lost."""
        now = time.time() if now is None else now
        prev = _read_json_tolerant(self.lease_path(index))
        if prev is None or prev.get("worker") != worker:
            return False
        prev["deadline_unix"] = now + self.lease_seconds
        _atomic_write(self.lease_path(index), json.dumps(prev))
        return True

    def try_steal(self, index: int, worker: str) -> bool:
        """Mark a speculative re-issue of a leased cell by ``worker``.

        One marker per (cell, worker): the ``O_EXCL`` create makes the
        steal idempotent, so an idle worker re-scanning the queue
        cannot pile duplicate executions onto the same straggler.
        """
        try:
            fd = os.open(
                self.steal_marker_path(index, worker),
                os.O_WRONLY | os.O_CREAT | os.O_EXCL,
            )
        except FileExistsError:
            return False
        os.close(fd)
        return True

    def steal_markers(self, index: int) -> int:
        """How many workers have already re-issued cell ``index``."""
        pattern = f"cell-{index:06d}.steal-*"
        return len(list((self.root / LEASES_DIR).glob(pattern)))

    # -- completion records --------------------------------------------

    def record_result(
        self,
        worker: str,
        index: int,
        result: dict,
        seconds: float,
        attempt: int = 1,
        stolen: bool = False,
        takeover: bool = False,
    ) -> None:
        """Append one completion record to ``worker``'s own shard."""
        record = {
            "type": "result",
            "cell": self.cells[index].key,
            "index": index,
            "worker": worker,
            "attempt": attempt,
            "stolen": stolen,
            "lease_takeover": takeover,
            "completed_unix": time.time(),
            "seconds": seconds,
            "result": result,
        }
        self._append(self.results_path(worker), record)

    def record_telemetry(self, worker: str, record: dict) -> None:
        """Append one telemetry record to ``worker``'s telemetry shard."""
        self._append(self.telemetry_path(worker), record)

    @staticmethod
    def _append(path: Path, record: dict) -> None:
        line = json.dumps(record)
        if "\n" in line:  # defensive: JSONL integrity over exotic payloads
            raise ValueError("JSONL record serialised with an embedded newline")
        with open(path, "a") as fh:
            fh.write(line + "\n")
            fh.flush()

    # -- merge-side scanning -------------------------------------------

    def result_records(self) -> Tuple[List[dict], int]:
        """Every decodable result record across all shards."""
        records: List[dict] = []
        corrupt = 0
        for shard in sorted((self.root / RESULTS_DIR).glob("*.jsonl")):
            recs, bad = read_jsonl_tolerant(shard)
            corrupt += bad
            records.extend(r for r in recs if r.get("type") == "result")
        return records, corrupt

    def telemetry_records(self) -> Tuple[List[dict], int]:
        """Every decodable telemetry record across all shards."""
        records: List[dict] = []
        corrupt = 0
        for shard in sorted((self.root / TELEMETRY_DIR).glob("*.jsonl")):
            recs, bad = read_jsonl_tolerant(shard)
            corrupt += bad
            records.extend(recs)
        return records, corrupt

    def completed(self) -> Tuple[Dict[str, dict], ShardStats]:
        """First-completion-wins view of the result shards.

        Returns ``(winners, stats)``: ``winners`` maps cell key to the
        earliest completion record (ties broken by worker id, so every
        reader of the same shards picks the same winner); ``stats``
        carries the duplicate/steal/takeover accounting the
        ``distrib.*`` counters are built from.
        """
        records, corrupt = self.result_records()
        known = set(self._index_by_key)
        winners: Dict[str, dict] = {}
        stats = ShardStats(corrupt_records=corrupt)
        for rec in sorted(
            records,
            key=lambda r: (float(r.get("completed_unix", 0.0)), str(r.get("worker"))),
        ):
            key = rec.get("cell")
            if key not in known:
                stats.corrupt_records += 1
                continue
            worker = str(rec.get("worker", "?"))
            per = stats.per_worker.setdefault(
                worker,
                {"cells": 0, "steals": 0, "lease_takeovers": 0, "worker_seconds": 0.0},
            )
            per["cells"] += 1
            per["worker_seconds"] += float(rec.get("seconds", 0.0))
            if rec.get("stolen"):
                per["steals"] += 1
                stats.steals += 1
            if rec.get("lease_takeover"):
                per["lease_takeovers"] += 1
                stats.lease_takeovers += 1
            if key in winners:
                stats.duplicates += 1
                continue
            winners[key] = rec
        stats.completed = len(winners)
        return winners, stats

    def completed_keys(self) -> set:
        """Cell keys with at least one completion record (fast path)."""
        records, _ = self.result_records()
        known = set(self._index_by_key)
        return {r["cell"] for r in records if r.get("cell") in known}

    def all_done(self) -> bool:
        return len(self.completed_keys()) >= len(self.cells)
