"""The async driver API: ``submit(spec) -> JobHandle`` and the merge.

``submit`` captures the ambient environment, materialises a queue
directory, launches local worker processes (plain ``sys.executable -m
repro.distrib.worker`` subprocesses — the exact command a multi-host
launch would run remotely), and returns immediately with a
:class:`JobHandle`.  ``status()`` polls the shards, ``wait()`` blocks
on completion, ``result()`` merges.

``resume`` is the same handle over an existing queue directory:
completion state lives only in the results shards, so a resumed run
skips completed cells (they already have records), re-leases expired
ones, and never recomputes — pinned by
``tests/integration/test_distrib_engine.py``.

The merge is driver-side and pure: first completion per cell key wins,
stolen/duplicate executions are discarded, per-shard attribution comes
out as ``distrib.*`` counters, and winning cells' telemetry streams
replay into the installed collector so one ``run_report.md`` covers
the whole pool.
"""

from __future__ import annotations

import dataclasses
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.distrib.cells import SweepSpec
from repro.distrib.collector import (
    capture_env,
    distrib_counters,
    merge_cell_telemetry,
)
from repro.distrib.queue import DEFAULT_LEASE_SECONDS, ShardStats, WorkQueue

__all__ = [
    "IncompleteJobError",
    "JobStatus",
    "MergedResult",
    "JobHandle",
    "submit",
    "resume",
    "merge_results",
]


class IncompleteJobError(RuntimeError):
    """``result()`` was asked for before every cell completed."""


@dataclasses.dataclass(frozen=True)
class JobStatus:
    """A point-in-time view of a job's progress."""

    total: int
    completed: int
    running_workers: int

    @property
    def done(self) -> bool:
        return self.completed >= self.total


@dataclasses.dataclass
class MergedResult:
    """The first-completion-wins merge of a completed queue."""

    spec: SweepSpec
    #: cell key -> result payload (the dict the cell body returned)
    cells: Dict[str, dict]
    stats: ShardStats
    telemetry_merged: int = 0

    def in_manifest_order(self) -> List[dict]:
        """Result payloads in the spec's canonical cell order."""
        return [self.cells[c.key] for c in self.spec.cells()]

    def sweep_points(self) -> list:
        """Reconstruct ``BlasSweep.sweep``'s return value, bit for bit.

        The serial sweep returns points n_orb-major / mode-minor; a
        single-seed ``sweep`` spec's manifest order is exactly that,
        so reconstruction is a straight map over
        :meth:`in_manifest_order`.  Floats survive the queue's JSON
        round-trip exactly, which is what makes the rebuilt points
        ``==`` the serial ones (the ``distrib-serial-equivalence``
        claim).
        """
        if self.spec.kind != "sweep":
            raise ValueError(f"not a sweep job (kind={self.spec.kind!r})")
        from repro.blas.modes import ComputeMode
        from repro.core.blas_sweep import SweepPoint

        return [
            SweepPoint(
                n_orb=payload["n_orb"],
                mode=ComputeMode.parse(payload["mode"]),
                m=payload["m"],
                n=payload["n"],
                k=payload["k"],
                fp32_seconds=payload["fp32_seconds"],
                mode_seconds=payload["mode_seconds"],
            )
            for payload in self.in_manifest_order()
        ]


def merge_results(queue: WorkQueue, ingest_telemetry: bool = True) -> MergedResult:
    """Merge a fully-completed queue into one :class:`MergedResult`.

    Raises :class:`IncompleteJobError` while cells are outstanding.
    When a collector is installed (and ``ingest_telemetry``), the
    winning cells' telemetry streams and the ``distrib.*`` attribution
    counters are replayed into it.
    """
    winners, stats = queue.completed()
    missing = len(queue.cells) - len(winners)
    if missing:
        raise IncompleteJobError(
            f"{missing} of {len(queue.cells)} cells incomplete in {queue.root}"
        )
    merged = MergedResult(
        spec=queue.spec,
        cells={key: rec["result"] for key, rec in winners.items()},
        stats=stats,
    )
    if ingest_telemetry:
        from repro.telemetry.registry import active as _telemetry_active

        collector = _telemetry_active()
        if collector is not None:
            records, corrupt = queue.telemetry_records()
            stats.corrupt_records += corrupt
            merged.telemetry_merged = merge_cell_telemetry(
                collector, records, winners
            )
            distrib_counters(collector, stats)
    return merged


class JobHandle:
    """A submitted (or resumed) distributed job."""

    def __init__(self, queue: WorkQueue, procs: Optional[List] = None):
        self.queue = queue
        self.procs = list(procs or [])
        self._result: Optional[MergedResult] = None

    @property
    def queue_dir(self) -> Path:
        return self.queue.root

    def status(self) -> JobStatus:
        return JobStatus(
            total=len(self.queue.cells),
            completed=len(self.queue.completed_keys()),
            running_workers=sum(1 for p in self.procs if p.poll() is None),
        )

    def wait(self, timeout: Optional[float] = None, poll: float = 0.1) -> JobStatus:
        """Block until every cell completes (or ``timeout`` elapses).

        Completion is judged from the shards, not the worker
        processes: a job finishes even if some workers were killed, as
        long as others (or a resume) drained the queue.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            status = self.status()
            if status.done:
                return status
            if status.running_workers == 0 and self.procs:
                # Every local worker exited with cells outstanding —
                # report instead of spinning forever; the caller can
                # resume() the queue directory.
                return status
            if deadline is not None and time.monotonic() >= deadline:
                return status
            time.sleep(poll)

    def result(self, timeout: Optional[float] = None) -> MergedResult:
        """Wait, reap the workers, and merge (memoised)."""
        if self._result is not None:
            return self._result
        status = self.wait(timeout=timeout)
        if not status.done:
            raise IncompleteJobError(
                f"job incomplete: {status.completed}/{status.total} cells "
                f"({status.running_workers} workers still running); "
                f"resume with repro.distrib.resume({str(self.queue_dir)!r})"
            )
        self.cancel()  # reap stragglers still chewing stolen duplicates
        self._result = merge_results(self.queue)
        return self._result

    def cancel(self, grace: float = 5.0) -> None:
        """Terminate any still-running local workers."""
        for proc in self.procs:
            if proc.poll() is None:
                proc.terminate()
        deadline = time.monotonic() + grace
        for proc in self.procs:
            while proc.poll() is None and time.monotonic() < deadline:
                time.sleep(0.02)
            if proc.poll() is None:
                proc.kill()
                proc.wait()


def _spawn_workers(queue: WorkQueue, n_workers: int, id_prefix: str = "w") -> List:
    """Launch ``n_workers`` local worker subprocesses on ``queue``."""
    import os

    import repro

    src_root = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    env["PYTHONPATH"] = src_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    procs = []
    for i in range(n_workers):
        procs.append(
            subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro.distrib.worker",
                    "--queue",
                    str(queue.root),
                    "--worker-id",
                    f"{id_prefix}{i}",
                ],
                env=env,
            )
        )
    return procs


def submit(
    spec: SweepSpec,
    n_workers: int = 2,
    queue_dir: Optional[Union[str, Path]] = None,
    lease_seconds: float = DEFAULT_LEASE_SECONDS,
    steal_after: Union[float, None, str] = "auto",
    inline: bool = False,
) -> JobHandle:
    """Explode ``spec`` into a queue and start draining it.

    The ambient environment (backend, compute mode, telemetry, Ozaki
    slices, drift/adaptive switches) is captured into the manifest so
    every worker — local subprocess or remote — re-enters it.

    ``queue_dir=None`` uses a fresh temporary directory; pass a shared
    path to let other hosts join.  ``inline=True`` drains the queue in
    this process instead of spawning anything (round-robin over
    ``n_workers`` synthetic worker ids) — the claims checker and unit
    tests use it to exercise the full protocol cheaply.
    """
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    if queue_dir is None:
        queue_dir = tempfile.mkdtemp(prefix="repro-distrib-")
    queue = WorkQueue.create(
        queue_dir,
        spec,
        env=capture_env(),
        lease_seconds=lease_seconds,
        steal_after=steal_after,
    )
    if inline:
        _drain_inline(queue, n_workers)
        return JobHandle(queue, procs=[])
    return JobHandle(queue, procs=_spawn_workers(queue, n_workers))


def resume(
    queue_dir: Union[str, Path], n_workers: int = 2, inline: bool = False
) -> JobHandle:
    """Re-attach to an existing queue directory and finish it.

    Cells with completion records are skipped outright; expired leases
    are taken over.  Safe to call on an already-complete queue (the
    workers exit immediately and ``result()`` just merges).
    """
    queue = WorkQueue(queue_dir)
    if inline:
        _drain_inline(queue, n_workers)
        return JobHandle(queue, procs=[])
    return JobHandle(queue, procs=_spawn_workers(queue, n_workers, id_prefix="r"))


def _drain_inline(queue: WorkQueue, n_workers: int) -> None:
    """Drain a queue in-process, round-robin over synthetic worker ids.

    Exercises the identical claim/record protocol the subprocess path
    uses (same ``run_worker``), without the spawn cost; the ambient
    env is NOT re-applied — inline callers already carry it.
    """
    from repro.distrib.worker import run_worker

    workers = [f"inline{i}" for i in range(max(1, n_workers))]
    while not queue.all_done():
        progressed = 0
        for worker_id in workers:
            progressed += run_worker(
                queue.root, worker_id=worker_id, max_cells=1, apply_env=False
            )
        if progressed == 0:
            break
