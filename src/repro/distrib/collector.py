"""Ambient-environment capture/re-entry + streamed telemetry merge.

Threads inherit the process's ambient precision state — the active
backend, the compute-mode env var, the Ozaki slice count, whether
telemetry/drift/adaptive are on — for free, which is why
``parallel_mode_sweep`` only has to re-enter the backend.  Worker
*processes* inherit none of it, so the driver captures the effective
state (:func:`capture_env`), stores it in the queue manifest, and each
worker re-applies it before touching a cell (:func:`apply_captured_env`).

Capture reads the *programmatic* state, not just ``os.environ``: a
driver that called ``set_backend("torch-cpu")`` or
``set_ozaki_slices(2)`` without exporting anything still propagates
those choices, because capture serialises the resolved values back
into their environment-contract variables.

The telemetry half: workers snapshot one fresh collector per cell into
their telemetry shard (:func:`snapshot_cell_telemetry`), and the merge
replays the winning cells' counters/gauges into the driver's collector
(:func:`merge_cell_telemetry`) plus derives the cross-worker
``distrib.*`` attribution counters from the result records
(:func:`distrib_counters`) — derived from results, not worker
summaries, so a killed worker's completed cells still count.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.blas.backend import REPRO_BACKEND_ENV, active_backend, refresh_from_env
from repro.blas.modes import (
    MKL_COMPUTE_MODE_ENV,
    OZAKI_SLICES_ENV,
    get_ozaki_slices,
    set_ozaki_slices,
)
from repro.core.scheduler import ADAPTIVE_ENV, adaptive_enabled
from repro.telemetry.drift import DRIFT_ENV, drift_enabled
from repro.telemetry.registry import (
    MAX_EVENTS_ENV,
    TELEMETRY_ENV,
    Telemetry,
    parse_counter_name,
    telemetry_enabled,
)

__all__ = [
    "CAPTURED_ENV_VARS",
    "capture_env",
    "apply_captured_env",
    "snapshot_cell_telemetry",
    "merge_cell_telemetry",
    "distrib_counters",
]

#: The environment contract a worker re-enters, in application order.
CAPTURED_ENV_VARS = (
    MKL_COMPUTE_MODE_ENV,  # MKL_BLAS_COMPUTE_MODE
    OZAKI_SLICES_ENV,  # REPRO_OZAKI_SLICES
    REPRO_BACKEND_ENV,  # REPRO_BACKEND
    TELEMETRY_ENV,  # REPRO_TELEMETRY
    MAX_EVENTS_ENV,  # REPRO_TELEMETRY_MAX_EVENTS
    DRIFT_ENV,  # REPRO_DRIFT
    ADAPTIVE_ENV,  # REPRO_ADAPTIVE
)


def capture_env(environ: Optional[Dict[str, str]] = None) -> Dict[str, str]:
    """Serialise the driver's *effective* ambient state for workers.

    Programmatic state wins over raw env vars: the resolved backend
    cache key, Ozaki slice count and telemetry/drift/adaptive switches
    are written back into their contract variables, so ``set_backend``
    etc. propagate even when the caller never exported anything.
    """
    import os

    env = dict(os.environ if environ is None else environ)
    captured: Dict[str, str] = {}
    for var in (MKL_COMPUTE_MODE_ENV, MAX_EVENTS_ENV):
        value = env.get(var, "").strip()
        if value:
            captured[var] = value
    captured[OZAKI_SLICES_ENV] = str(get_ozaki_slices())
    backend = active_backend().cache_key
    if backend != "numpy":
        captured[REPRO_BACKEND_ENV] = backend
    captured[TELEMETRY_ENV] = "1" if telemetry_enabled() else "0"
    captured[DRIFT_ENV] = "1" if drift_enabled() else "0"
    captured[ADAPTIVE_ENV] = "1" if adaptive_enabled() else "0"
    return captured


def apply_captured_env(captured: Dict[str, str]) -> None:
    """Re-enter a captured environment inside a worker process.

    Mutates ``os.environ`` first (so the contract variables are what
    any later ``refresh``/spawn sees), then refreshes the programmatic
    state that is resolved at import time: the active backend and the
    Ozaki slice count.  Telemetry itself is *not* enabled here — the
    worker loop installs one fresh collector per cell instead, so cell
    attribution never bleeds across cells.
    """
    import os

    for var in CAPTURED_ENV_VARS:
        if var in captured:
            os.environ[var] = str(captured[var])
        else:
            os.environ.pop(var, None)
    set_ozaki_slices(None)  # defer to the env var just applied
    refresh_from_env()


# ----------------------------------------------------------------------
# Per-cell telemetry stream.
# ----------------------------------------------------------------------


def snapshot_cell_telemetry(
    collector: Telemetry, cell_key: str, worker: str, attempt: int, seconds: float
) -> dict:
    """One telemetry shard record: a cell's counters/gauges snapshot."""
    return {
        "type": "cell_telemetry",
        "cell": cell_key,
        "worker": worker,
        "attempt": attempt,
        "seconds": seconds,
        "counters": collector.counters_flat(),
        "gauges": collector.gauges_flat(),
    }


def merge_cell_telemetry(
    collector: Telemetry, records: List[dict], winners: Dict[str, dict]
) -> int:
    """Replay winning cells' telemetry into ``collector``.

    Only the records matching a winner's (cell, worker, attempt) are
    merged — a stolen duplicate's stream is discarded along with its
    result, so counters are never double-counted.  Returns the number
    of cell streams merged.
    """
    merged = 0
    for rec in records:
        if rec.get("type") != "cell_telemetry":
            continue
        winner = winners.get(rec.get("cell"))
        if winner is None:
            continue
        if rec.get("worker") != winner.get("worker"):
            continue
        if int(rec.get("attempt", 1)) != int(winner.get("attempt", 1)):
            continue
        for flat, value in dict(rec.get("counters", {})).items():
            name, labels = parse_counter_name(flat)
            collector.count(name, float(value), **dict(labels))
        for flat, value in dict(rec.get("gauges", {})).items():
            name, labels = parse_counter_name(flat)
            collector.gauge(name, float(value), **dict(labels))
        merged += 1
    return merged


def distrib_counters(collector: Telemetry, stats) -> None:
    """Emit the cross-worker ``distrib.*`` attribution counters.

    ``stats`` is a :class:`repro.distrib.queue.ShardStats`.  Everything
    here is derived from the result shards at merge time, so the
    numbers are correct even when a worker was killed mid-run and never
    wrote a summary of its own.
    """
    for worker, per in sorted(stats.per_worker.items()):
        collector.count("distrib.cells", per["cells"], worker=worker)
        collector.count("distrib.worker_seconds", per["worker_seconds"], worker=worker)
        if per["steals"]:
            collector.count("distrib.steals", per["steals"], worker=worker)
        if per["lease_takeovers"]:
            collector.count(
                "distrib.lease_expired", per["lease_takeovers"], worker=worker
            )
    if stats.duplicates:
        collector.count("distrib.duplicates", stats.duplicates)
    if stats.corrupt_records:
        collector.count("distrib.corrupt_records", stats.corrupt_records)
