#!/usr/bin/env python
"""CI smoke test for the distributed sweep engine.

Exercises the whole crash-recovery story on a tiny grid, end to end:

1. create a file-backed queue for a small synthetic grid and start two
   subprocess workers;
2. SIGKILL one worker mid-run (its lease is left behind, un-renewed);
3. resume the queue and let the survivors finish;
4. merge and verify: every cell completed, no cell that finished
   before the kill was recomputed, and the merged report renders.

Exit code 0 on success, 1 with a diagnostic on any violation.  Run via
``make distrib-smoke`` or directly:

    PYTHONPATH=src python scripts/distrib_smoke.py
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC_ROOT = REPO_ROOT / "src"
sys.path.insert(0, str(SRC_ROOT))

from repro.distrib import SweepSpec, WorkQueue, resume  # noqa: E402

N_CELLS = 10
CELL_SECONDS = 0.15


def worker_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_ROOT) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def spawn_worker(queue_dir, worker_id):
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.distrib.worker",
            "--queue",
            str(queue_dir),
            "--worker-id",
            worker_id,
        ],
        env=worker_env(),
    )


def fail(message):
    print(f"distrib-smoke: FAIL — {message}", file=sys.stderr)
    return 1


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="distrib_smoke_") as tmp:
        queue_dir = Path(tmp) / "queue"
        spec = SweepSpec(
            kind="synthetic", n_cells=N_CELLS, params={"cell_seconds": CELL_SECONDS}
        )
        queue = WorkQueue.create(queue_dir, spec, lease_seconds=1.0)
        print(f"distrib-smoke: queue at {queue_dir} ({N_CELLS} cells, 2 workers)")

        workers = [spawn_worker(queue_dir, f"w{i}") for i in range(2)]
        victim, survivor = workers

        # Let the pool make real progress, then kill one worker cold.
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if len(queue.completed_keys()) >= 3:
                break
            time.sleep(0.05)
        else:
            for p in workers:
                p.kill()
            return fail("no progress within 60 s")
        victim.send_signal(signal.SIGKILL)
        victim.wait()
        print("distrib-smoke: killed w0 mid-run")

        # Snapshot what was already won; none of it may be recomputed.
        before = {
            key: (rec["worker"], rec["completed_unix"])
            for key, rec in queue.completed()[0].items()
        }
        survivor.send_signal(signal.SIGKILL)
        survivor.wait()

        handle = resume(queue_dir, n_workers=2)
        merged = handle.result(timeout=120)
        print(
            f"distrib-smoke: resumed; {merged.stats.completed} cells merged, "
            f"{merged.stats.lease_takeovers} lease takeover(s), "
            f"{merged.stats.duplicates} duplicate(s)"
        )

        if len(merged.cells) != N_CELLS:
            return fail(f"merged {len(merged.cells)} of {N_CELLS} cells")
        winners, _ = queue.completed()
        for key, (worker, completed_unix) in before.items():
            if winners[key]["worker"] != worker:
                return fail(f"cell {key} recomputed by {winners[key]['worker']}")
            if winners[key]["completed_unix"] != completed_unix:
                return fail(f"cell {key} has a new timestamp: recomputed")
        records, corrupt = queue.result_records()
        per_cell = {}
        for rec in records:
            per_cell[rec["cell"]] = per_cell.get(rec["cell"], 0) + 1
        recomputed = [k for k in before if per_cell.get(k, 0) != 1]
        if recomputed:
            return fail(f"pre-kill cells re-ran: {recomputed}")

        # The merged report must render with the distrib shard table.
        from repro.distrib.collector import distrib_counters
        from repro.telemetry.registry import Telemetry
        from repro.telemetry.report import data_from_collector, render_run_report

        collector = Telemetry()
        distrib_counters(collector, merged.stats)
        report = render_run_report(data_from_collector(collector))
        if "Distributed shards" not in report:
            return fail("merged report is missing the shard table")
        print("distrib-smoke: merged report renders the shard table")

    print(
        "distrib-smoke: PASS — kill-and-resume completed with zero recomputation"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
