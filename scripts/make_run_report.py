#!/usr/bin/env python
"""Generate a ``run_report.md`` from an exported telemetry trace.

``runner --telemetry DIR`` writes the report automatically; this
script regenerates it *offline* from the machine-first
``trace.jsonl`` — useful for traces copied off a cluster, CI
artifacts, or after tweaking the report renderer.

Usage::

    python scripts/make_run_report.py out/trace.jsonl [-o out/run_report.md]

With no ``-o`` the report is written next to the trace as
``run_report.md``; ``-o -`` prints it to stdout.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.telemetry.report import generate_run_report  # noqa: E402


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="Render run_report.md from a telemetry trace.jsonl."
    )
    parser.add_argument(
        "trace", type=Path,
        help="trace.jsonl written by runner --telemetry / export_all",
    )
    parser.add_argument(
        "--output", "-o", default=None, metavar="PATH",
        help="report destination (default: run_report.md next to the "
        "trace; '-' for stdout)",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if not args.trace.is_file():
        print(f"error: {args.trace} not found", file=sys.stderr)
        return 1
    if args.output == "-":
        print(generate_run_report(args.trace))
        return 0
    out = (
        Path(args.output)
        if args.output is not None
        else args.trace.parent / "run_report.md"
    )
    generate_run_report(args.trace, out_path=out)
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
