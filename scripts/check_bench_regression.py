#!/usr/bin/env python
"""Gate the split-plan fast path against stored speedup floors.

Reads ``BENCH_splitgemm.json`` (produced by
``benchmarks/test_split_gemm_perf.py``) and fails — exit code 1 — if
any mode's prepared-vs-cold speedup dropped below its floor in
``benchmarks/splitgemm_floors.json``, or if any mode's prepared output
was not bitwise identical to the cold path.

Shared CI runners are noisy, so two escape hatches exist:

* ``--slack``/``BENCH_SLACK`` — a relative tolerance on the speedup
  floors (``--slack 0.15`` accepts speedups down to 85% of each
  floor).  Bitwise-identity failures are never tolerated.
* ``--report-only``/``BENCH_REPORT_ONLY`` — print every violation (as
  GitHub annotations when running in Actions) but exit 0, so a bench
  job can annotate a PR without blocking it.

Usage::

    python scripts/check_bench_regression.py [results.json] [floors.json]
        [--slack FRACTION] [--report-only]

Run via ``make bench-split``, which regenerates the results first.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
DEFAULT_RESULTS = REPO_ROOT / "BENCH_splitgemm.json"
DEFAULT_FLOORS = REPO_ROOT / "benchmarks" / "splitgemm_floors.json"


def _env_flag(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() in ("1", "true", "yes", "on")


def _warn(message: str) -> None:
    """Emit a non-fatal violation (GitHub annotation under Actions)."""
    if _env_flag("GITHUB_ACTIONS"):
        print(f"::warning title=bench regression::{message}")
    else:
        print(f"warning: {message}", file=sys.stderr)


def _fail_or_report(message: str, report_only: bool) -> int:
    """One-line diagnosis of an unusable input file.

    ``--report-only`` keeps the CI-annotation contract: warn, exit 0.
    """
    if report_only:
        _warn(message)
        print("bench regression check skipped (report-only mode).")
        return 0
    print(f"error: {message}", file=sys.stderr)
    return 1


def _load_json(path: Path, hint: str):
    """Parse ``path`` or return a one-line reason string why not."""
    try:
        text = path.read_text()
    except FileNotFoundError:
        return None, f"{path} not found — {hint}"
    except OSError as exc:
        return None, f"{path} unreadable ({exc.strerror or exc}) — {hint}"
    try:
        return json.loads(text), None
    except json.JSONDecodeError as exc:
        return None, f"{path} is not valid JSON (line {exc.lineno}: {exc.msg}) — {hint}"


def check(
    results_path: Path,
    floors_path: Path,
    slack: float = 0.0,
    report_only: bool = False,
) -> int:
    results, problem = _load_json(
        results_path,
        "run `pytest benchmarks/test_split_gemm_perf.py` (or `make bench-split`) first",
    )
    if problem is not None:
        return _fail_or_report(problem, report_only)
    floors_doc, problem = _load_json(
        floors_path, "the baseline floors file should be committed in benchmarks/"
    )
    if problem is not None:
        return _fail_or_report(problem, report_only)
    try:
        floors = floors_doc["floors"]
        result_rows = results["results"]
    except (KeyError, TypeError):
        missing = "floors" if not isinstance(floors_doc, dict) or "floors" not in floors_doc else "results"
        doc = floors_path if missing == "floors" else results_path
        return _fail_or_report(
            f"{doc} is missing its {missing!r} key — regenerate it", report_only
        )
    if not 0.0 <= slack < 1.0:
        print(f"error: --slack must be in [0, 1), got {slack}", file=sys.stderr)
        return 2

    rows = {row["mode"]: row for row in result_rows}
    failures = []
    for mode, floor in floors.items():
        row = rows.get(mode)
        if row is None:
            failures.append(f"{mode}: missing from {results_path.name}")
            continue
        effective_floor = floor * (1.0 - slack)
        status = "ok"
        if not row["bitwise_identical"]:
            # Correctness, not noise: slack never applies here.
            failures.append(f"{mode}: prepared output NOT bitwise identical")
            status = "BITWISE MISMATCH"
        if row["speedup"] < effective_floor:
            failures.append(
                f"{mode}: speedup {row['speedup']:.2f}x below floor "
                f"{floor:.2f}x (effective {effective_floor:.2f}x with "
                f"slack {slack:.0%})"
            )
            status = "BELOW FLOOR"
        print(
            f"{mode:<18} speedup {row['speedup']:6.2f}x  (floor {floor:.2f}x, "
            f"slack {slack:.0%})  "
            f"cold {row['cold_seconds'] * 1e3:7.2f} ms  "
            f"prepared {row['prepared_seconds'] * 1e3:7.2f} ms  [{status}]"
        )

    if failures:
        if report_only:
            for f in failures:
                _warn(f)
            print(
                "\nsplit-GEMM fast-path regression check: "
                f"{len(failures)} violation(s) reported (report-only mode, not failing)."
            )
            return 0
        print("\nsplit-GEMM fast-path regression check FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nsplit-GEMM fast-path regression check passed.")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="Check split-GEMM benchmark results against stored floors."
    )
    parser.add_argument(
        "results", nargs="?", type=Path, default=DEFAULT_RESULTS,
        help=f"benchmark results JSON (default: {DEFAULT_RESULTS.name})",
    )
    parser.add_argument(
        "floors", nargs="?", type=Path, default=DEFAULT_FLOORS,
        help="speedup floors JSON (default: benchmarks/splitgemm_floors.json)",
    )
    parser.add_argument(
        "--slack", type=float,
        default=float(os.environ.get("BENCH_SLACK", "0") or 0),
        metavar="FRACTION",
        help="relative tolerance on speedup floors, 0..1 "
        "(default: $BENCH_SLACK or 0); bitwise checks get no slack",
    )
    parser.add_argument(
        "--report-only", action="store_true",
        default=_env_flag("BENCH_REPORT_ONLY"),
        help="print violations (GitHub annotations under Actions) but exit 0 "
        "(default: $BENCH_REPORT_ONLY)",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return check(args.results, args.floors, slack=args.slack, report_only=args.report_only)


if __name__ == "__main__":
    raise SystemExit(main())
