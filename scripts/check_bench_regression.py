#!/usr/bin/env python
"""Gate benchmark results against stored floors.

Default mode reads ``BENCH_splitgemm.json`` (produced by
``benchmarks/test_split_gemm_perf.py``) and fails — exit code 1 — if
any mode's prepared-vs-cold speedup dropped below its floor in
``benchmarks/splitgemm_floors.json``, or if any mode's prepared output
was not bitwise identical to the cold path.

``--adaptive`` switches to the adaptive-scheduler benchmark instead:
``BENCH_adaptive.json`` (from ``benchmarks/test_adaptive_sched.py``)
is checked against ``benchmarks/adaptive_floors.json`` —
``speedup_vs_bf16x3`` must clear its floor (slack applies) and the
scheduler must report zero ``unhandled_breaches`` (a correctness
invariant of the closed loop: slack never applies).

``--newmodes`` gates the Ozaki-INT8 / emulated-FP64 benchmark:
``BENCH_newmodes.json`` (from ``benchmarks/test_ozaki_emufp64_perf.py``)
is checked against ``benchmarks/newmodes_floors.json`` — per-case
``slowdown_vs_standard`` *ceilings* (slack widens them) plus
``max_abs_dev_vs_fp64`` accuracy ceilings and error-ladder orderings
(no slack: accuracy is deterministic for the benchmark's fixed seed).

Shared CI runners are noisy, so two escape hatches exist:

* ``--slack``/``BENCH_SLACK`` — a relative tolerance on the speedup
  floors (``--slack 0.15`` accepts speedups down to 85% of each
  floor).  Bitwise-identity failures are never tolerated.
* ``--report-only``/``BENCH_REPORT_ONLY`` — print every violation (as
  GitHub annotations when running in Actions) but exit 0, so a bench
  job can annotate a PR without blocking it.

Usage::

    python scripts/check_bench_regression.py [results.json] [floors.json]
        [--slack FRACTION] [--report-only]

Run via ``make bench-split``, which regenerates the results first.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
DEFAULT_RESULTS = REPO_ROOT / "BENCH_splitgemm.json"
DEFAULT_FLOORS = REPO_ROOT / "benchmarks" / "splitgemm_floors.json"
ADAPTIVE_RESULTS = REPO_ROOT / "BENCH_adaptive.json"
ADAPTIVE_FLOORS = REPO_ROOT / "benchmarks" / "adaptive_floors.json"
NEWMODES_RESULTS = REPO_ROOT / "BENCH_newmodes.json"
NEWMODES_FLOORS = REPO_ROOT / "benchmarks" / "newmodes_floors.json"


def _env_flag(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() in ("1", "true", "yes", "on")


def _warn(message: str) -> None:
    """Emit a non-fatal violation (GitHub annotation under Actions)."""
    if _env_flag("GITHUB_ACTIONS"):
        print(f"::warning title=bench regression::{message}")
    else:
        print(f"warning: {message}", file=sys.stderr)


def _fail_or_report(message: str, report_only: bool) -> int:
    """One-line diagnosis of an unusable input file.

    ``--report-only`` keeps the CI-annotation contract: warn, exit 0.
    """
    if report_only:
        _warn(message)
        print("bench regression check skipped (report-only mode).")
        return 0
    print(f"error: {message}", file=sys.stderr)
    return 1


def _load_json(path: Path, hint: str):
    """Parse ``path`` or return a one-line reason string why not."""
    try:
        text = path.read_text()
    except FileNotFoundError:
        return None, f"{path} not found — {hint}"
    except OSError as exc:
        return None, f"{path} unreadable ({exc.strerror or exc}) — {hint}"
    try:
        return json.loads(text), None
    except json.JSONDecodeError as exc:
        return None, f"{path} is not valid JSON (line {exc.lineno}: {exc.msg}) — {hint}"


def check(
    results_path: Path,
    floors_path: Path,
    slack: float = 0.0,
    report_only: bool = False,
) -> int:
    results, problem = _load_json(
        results_path,
        "run `pytest benchmarks/test_split_gemm_perf.py` (or `make bench-split`) first",
    )
    if problem is not None:
        return _fail_or_report(problem, report_only)
    floors_doc, problem = _load_json(
        floors_path, "the baseline floors file should be committed in benchmarks/"
    )
    if problem is not None:
        return _fail_or_report(problem, report_only)
    try:
        floors = floors_doc["floors"]
        result_rows = results["results"]
    except (KeyError, TypeError):
        missing = "floors" if not isinstance(floors_doc, dict) or "floors" not in floors_doc else "results"
        doc = floors_path if missing == "floors" else results_path
        return _fail_or_report(
            f"{doc} is missing its {missing!r} key — regenerate it", report_only
        )
    if not 0.0 <= slack < 1.0:
        print(f"error: --slack must be in [0, 1), got {slack}", file=sys.stderr)
        return 2

    rows = {row["mode"]: row for row in result_rows}
    failures = []
    for mode, floor in floors.items():
        row = rows.get(mode)
        if row is None:
            failures.append(f"{mode}: missing from {results_path.name}")
            continue
        effective_floor = floor * (1.0 - slack)
        status = "ok"
        if not row["bitwise_identical"]:
            # Correctness, not noise: slack never applies here.
            failures.append(f"{mode}: prepared output NOT bitwise identical")
            status = "BITWISE MISMATCH"
        if row["speedup"] < effective_floor:
            failures.append(
                f"{mode}: speedup {row['speedup']:.2f}x below floor "
                f"{floor:.2f}x (effective {effective_floor:.2f}x with "
                f"slack {slack:.0%})"
            )
            status = "BELOW FLOOR"
        print(
            f"{mode:<18} speedup {row['speedup']:6.2f}x  (floor {floor:.2f}x, "
            f"slack {slack:.0%})  "
            f"cold {row['cold_seconds'] * 1e3:7.2f} ms  "
            f"prepared {row['prepared_seconds'] * 1e3:7.2f} ms  [{status}]"
        )

    if failures:
        if report_only:
            for f in failures:
                _warn(f)
            print(
                "\nsplit-GEMM fast-path regression check: "
                f"{len(failures)} violation(s) reported (report-only mode, not failing)."
            )
            return 0
        print("\nsplit-GEMM fast-path regression check FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nsplit-GEMM fast-path regression check passed.")
    return 0


def _dig(doc: dict, dotted: str):
    """Resolve a ``a.b.c`` path into nested dicts (None when absent)."""
    node = doc
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def check_adaptive(
    results_path: Path,
    floors_path: Path,
    slack: float = 0.0,
    report_only: bool = False,
) -> int:
    """Gate the adaptive-scheduler benchmark against its stored floors."""
    results, problem = _load_json(
        results_path,
        "run `pytest benchmarks/test_adaptive_sched.py` (or `make bench-adaptive`) first",
    )
    if problem is not None:
        return _fail_or_report(problem, report_only)
    floors_doc, problem = _load_json(
        floors_path, "the baseline floors file should be committed in benchmarks/"
    )
    if problem is not None:
        return _fail_or_report(problem, report_only)
    if not isinstance(floors_doc, dict) or "floors" not in floors_doc:
        return _fail_or_report(
            f"{floors_path} is missing its 'floors' key — regenerate it", report_only
        )
    if not 0.0 <= slack < 1.0:
        print(f"error: --slack must be in [0, 1), got {slack}", file=sys.stderr)
        return 2

    failures = []
    for metric, floor in floors_doc["floors"].items():
        value = _dig(results, metric)
        if value is None:
            failures.append(f"{metric}: missing from {results_path.name}")
            continue
        effective_floor = floor * (1.0 - slack)
        status = "ok" if value >= effective_floor else "BELOW FLOOR"
        if status != "ok":
            failures.append(
                f"{metric}: {value:.2f} below floor {floor:.2f} "
                f"(effective {effective_floor:.2f} with slack {slack:.0%})"
            )
        print(
            f"{metric:<24} {value:6.2f}  (floor {floor:.2f}, "
            f"slack {slack:.0%})  [{status}]"
        )
    for metric, expected in (floors_doc.get("invariants") or {}).items():
        value = _dig(results, metric)
        status = "ok" if value == expected else "INVARIANT VIOLATED"
        if status != "ok":
            # Correctness, not noise: slack never applies here.
            failures.append(f"{metric}: expected {expected}, got {value}")
        print(f"{metric:<24} {value!r:>6}  (must equal {expected})  [{status}]")

    if failures:
        if report_only:
            for f in failures:
                _warn(f)
            print(
                "\nadaptive-scheduler regression check: "
                f"{len(failures)} violation(s) reported (report-only mode, not failing)."
            )
            return 0
        print("\nadaptive-scheduler regression check FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nadaptive-scheduler regression check passed.")
    return 0


def check_newmodes(
    results_path: Path,
    floors_path: Path,
    slack: float = 0.0,
    report_only: bool = False,
) -> int:
    """Gate the Ozaki/emulated-FP64 benchmark against stored ceilings.

    Unlike the speedup-floor modes this one bounds from *above*:
    ``slowdown_vs_standard`` may not exceed its ceiling (slack widens
    the ceiling — noise makes emulation look slower, never faster than
    it is) and ``max_abs_dev_vs_fp64`` may not exceed its
    analytic-bound-derived ceiling (deterministic: no slack, ever).
    ``error_orderings`` pins the ladder's shape — e.g. a third Ozaki
    slice must strictly reduce the error of two.
    """
    results, problem = _load_json(
        results_path,
        "run `pytest benchmarks/test_ozaki_emufp64_perf.py` "
        "(or `make bench-newmodes`) first",
    )
    if problem is not None:
        return _fail_or_report(problem, report_only)
    floors_doc, problem = _load_json(
        floors_path, "the baseline ceilings file should be committed in benchmarks/"
    )
    if problem is not None:
        return _fail_or_report(problem, report_only)
    if not isinstance(floors_doc, dict) or "slowdown_ceilings" not in floors_doc:
        return _fail_or_report(
            f"{floors_path} is missing its 'slowdown_ceilings' key — regenerate it",
            report_only,
        )
    try:
        rows = {row["case"]: row for row in results["results"]}
    except (KeyError, TypeError):
        return _fail_or_report(
            f"{results_path} is missing its 'results' key — regenerate it",
            report_only,
        )
    if not 0.0 <= slack < 1.0:
        print(f"error: --slack must be in [0, 1), got {slack}", file=sys.stderr)
        return 2

    failures = []
    for case, ceiling in floors_doc["slowdown_ceilings"].items():
        row = rows.get(case)
        if row is None:
            failures.append(f"{case}: missing from {results_path.name}")
            continue
        effective = ceiling * (1.0 + slack)
        value = row["slowdown_vs_standard"]
        status = "ok" if value <= effective else "ABOVE CEILING"
        if status != "ok":
            failures.append(
                f"{case}: slowdown {value:.2f}x above ceiling {ceiling:.2f}x "
                f"(effective {effective:.2f}x with slack {slack:.0%})"
            )
        print(
            f"{case:<24} slowdown {value:7.2f}x  (ceiling {ceiling:.2f}x, "
            f"slack {slack:.0%})  [{status}]"
        )
    for case, ceiling in (floors_doc.get("error_ceilings") or {}).items():
        row = rows.get(case)
        if row is None:
            failures.append(f"{case}: missing from {results_path.name}")
            continue
        value = row["max_abs_dev_vs_fp64"]
        # Accuracy, not noise: slack never applies here.
        status = "ok" if value <= ceiling else "ERROR ABOVE CEILING"
        if status != "ok":
            failures.append(
                f"{case}: max |dev| {value:.3e} above ceiling {ceiling:.3e} "
                "(no slack on accuracy)"
            )
        print(
            f"{case:<24} max|dev| {value:9.3e}  (ceiling {ceiling:.3e})  [{status}]"
        )
    for pair in floors_doc.get("error_orderings") or []:
        lo, hi = pair
        row_lo, row_hi = rows.get(lo), rows.get(hi)
        if row_lo is None or row_hi is None:
            failures.append(f"ordering {lo} < {hi}: case(s) missing")
            continue
        a, b = row_lo["max_abs_dev_vs_fp64"], row_hi["max_abs_dev_vs_fp64"]
        status = "ok" if a < b else "ORDERING VIOLATED"
        if status != "ok":
            failures.append(
                f"ordering violated: error({lo})={a:.3e} not < error({hi})={b:.3e}"
            )
        print(f"error({lo}) < error({hi})  [{status}]")

    if failures:
        if report_only:
            for f in failures:
                _warn(f)
            print(
                "\nnew-modes regression check: "
                f"{len(failures)} violation(s) reported (report-only mode, not failing)."
            )
            return 0
        print("\nnew-modes regression check FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nnew-modes regression check passed.")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="Check split-GEMM benchmark results against stored floors."
    )
    parser.add_argument(
        "results", nargs="?", type=Path, default=None,
        help=f"benchmark results JSON (default: {DEFAULT_RESULTS.name}, "
        f"or {ADAPTIVE_RESULTS.name} with --adaptive)",
    )
    parser.add_argument(
        "floors", nargs="?", type=Path, default=None,
        help="floors JSON (default: benchmarks/splitgemm_floors.json, "
        "or benchmarks/adaptive_floors.json with --adaptive)",
    )
    parser.add_argument(
        "--adaptive", action="store_true",
        help="check the adaptive-scheduler benchmark (BENCH_adaptive.json) "
        "instead of the split-GEMM fast path",
    )
    parser.add_argument(
        "--newmodes", action="store_true",
        help="check the Ozaki/emulated-FP64 benchmark (BENCH_newmodes.json) "
        "against its slowdown/error ceilings instead of the split-GEMM "
        "fast path",
    )
    parser.add_argument(
        "--slack", type=float,
        default=float(os.environ.get("BENCH_SLACK", "0") or 0),
        metavar="FRACTION",
        help="relative tolerance on speedup floors, 0..1 "
        "(default: $BENCH_SLACK or 0); bitwise checks get no slack",
    )
    parser.add_argument(
        "--report-only", action="store_true",
        default=_env_flag("BENCH_REPORT_ONLY"),
        help="print violations (GitHub annotations under Actions) but exit 0 "
        "(default: $BENCH_REPORT_ONLY)",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.adaptive and args.newmodes:
        print("error: --adaptive and --newmodes are mutually exclusive",
              file=sys.stderr)
        return 2
    if args.newmodes:
        results = args.results or NEWMODES_RESULTS
        floors = args.floors or NEWMODES_FLOORS
        return check_newmodes(
            results, floors, slack=args.slack, report_only=args.report_only
        )
    if args.adaptive:
        results = args.results or ADAPTIVE_RESULTS
        floors = args.floors or ADAPTIVE_FLOORS
        return check_adaptive(
            results, floors, slack=args.slack, report_only=args.report_only
        )
    results = args.results or DEFAULT_RESULTS
    floors = args.floors or DEFAULT_FLOORS
    return check(results, floors, slack=args.slack, report_only=args.report_only)


if __name__ == "__main__":
    raise SystemExit(main())
