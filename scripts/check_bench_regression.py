#!/usr/bin/env python
"""Gate the split-plan fast path against stored speedup floors.

Reads ``BENCH_splitgemm.json`` (produced by
``benchmarks/test_split_gemm_perf.py``) and fails — exit code 1 — if
any mode's prepared-vs-cold speedup dropped below its floor in
``benchmarks/splitgemm_floors.json``, or if any mode's prepared output
was not bitwise identical to the cold path.

Usage::

    python scripts/check_bench_regression.py [results.json] [floors.json]

Run via ``make bench-split``, which regenerates the results first.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
DEFAULT_RESULTS = REPO_ROOT / "BENCH_splitgemm.json"
DEFAULT_FLOORS = REPO_ROOT / "benchmarks" / "splitgemm_floors.json"


def check(results_path: Path, floors_path: Path) -> int:
    try:
        results = json.loads(results_path.read_text())
    except FileNotFoundError:
        print(
            f"error: {results_path} not found — run "
            "`pytest benchmarks/test_split_gemm_perf.py` (or `make bench-split`) first",
            file=sys.stderr,
        )
        return 1
    floors = json.loads(floors_path.read_text())["floors"]

    rows = {row["mode"]: row for row in results["results"]}
    failures = []
    for mode, floor in floors.items():
        row = rows.get(mode)
        if row is None:
            failures.append(f"{mode}: missing from {results_path.name}")
            continue
        status = "ok"
        if not row["bitwise_identical"]:
            failures.append(f"{mode}: prepared output NOT bitwise identical")
            status = "BITWISE MISMATCH"
        if row["speedup"] < floor:
            failures.append(
                f"{mode}: speedup {row['speedup']:.2f}x below floor {floor:.2f}x"
            )
            status = "BELOW FLOOR"
        print(
            f"{mode:<18} speedup {row['speedup']:6.2f}x  (floor {floor:.2f}x)  "
            f"cold {row['cold_seconds'] * 1e3:7.2f} ms  "
            f"prepared {row['prepared_seconds'] * 1e3:7.2f} ms  [{status}]"
        )

    if failures:
        print("\nsplit-GEMM fast-path regression check FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nsplit-GEMM fast-path regression check passed.")
    return 0


def main(argv) -> int:
    results = Path(argv[1]) if len(argv) > 1 else DEFAULT_RESULTS
    floors = Path(argv[2]) if len(argv) > 2 else DEFAULT_FLOORS
    return check(results, floors)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
