#!/usr/bin/env python
"""Run (or resume) a distributed Fig. 3b sweep from the command line.

The thin CLI over :mod:`repro.distrib`: explode the (mode x N_orb)
grid into a work queue, drain it with N local worker processes, and
print the merged sweep table — bitwise-identical to the serial
``BlasSweep().sweep()`` output.

Usage::

    python scripts/run_distrib_sweep.py --workers 4
    python scripts/run_distrib_sweep.py --workers 2 --queue /shared/q
    # later / elsewhere: add capacity or finish an interrupted run
    python -m repro.distrib.worker --queue /shared/q
    python scripts/run_distrib_sweep.py --resume /shared/q

``--queue`` persists the queue directory (checkpoint: a re-run with
``--resume`` skips every completed cell); without it a temporary
directory is used and the run is one-shot.  ``--telemetry DIR``
exports the merged cross-worker trace, summary and ``run_report.md``
(with the per-shard "Distributed shards" table) into DIR.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.blas.modes import ComputeMode  # noqa: E402
from repro.core.blas_sweep import FIG3B_NORBS, SWEEP_MODES  # noqa: E402
from repro.distrib import SweepSpec, resume, submit  # noqa: E402


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="Distributed Fig. 3b BLAS sweep (repro.distrib)."
    )
    parser.add_argument(
        "--workers", "-w", type=int, default=2, metavar="N",
        help="local worker processes to launch (default 2)",
    )
    parser.add_argument(
        "--queue", default=None, metavar="DIR",
        help="queue directory (created; persists for --resume / "
        "multi-host workers).  Default: a temporary one-shot directory",
    )
    parser.add_argument(
        "--resume", default=None, metavar="DIR",
        help="finish an existing queue directory instead of submitting "
        "a new sweep (completed cells are never recomputed)",
    )
    parser.add_argument(
        "--norbs", type=int, nargs="+", default=list(FIG3B_NORBS), metavar="N",
        help=f"orbital counts to sweep (default: {' '.join(map(str, FIG3B_NORBS))})",
    )
    parser.add_argument(
        "--modes", nargs="+", default=None, metavar="MODE",
        help="compute modes (MKL_BLAS_COMPUTE_MODE names; default: all "
        f"{len(SWEEP_MODES)} sweep modes)",
    )
    parser.add_argument(
        "--routine", default="cgemm",
        help="BLAS routine the device model evaluates (default cgemm)",
    )
    parser.add_argument(
        "--lease-seconds", type=float, default=30.0,
        help="worker lease duration; a dead worker's cells are retaken "
        "after this (default 30)",
    )
    parser.add_argument(
        "--telemetry", default=None, metavar="DIR",
        help="export the merged cross-worker telemetry bundle "
        "(trace.jsonl, summary.txt, run_report.md) into DIR",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.resume is not None and args.queue is not None:
        print("--resume and --queue are mutually exclusive", file=sys.stderr)
        return 2

    if args.telemetry is not None:
        from repro.telemetry import telemetry as telemetry_scope

        scope = telemetry_scope(out_dir=args.telemetry)
    else:
        import contextlib

        scope = contextlib.nullcontext()

    with scope:
        t0 = time.perf_counter()
        if args.resume is not None:
            handle = resume(args.resume, n_workers=args.workers)
        else:
            modes = tuple(
                ComputeMode.parse(m).env_value
                for m in (args.modes or [m.env_value for m in SWEEP_MODES])
            )
            spec = SweepSpec(
                kind="sweep",
                modes=modes,
                norbs=tuple(args.norbs),
                params={"routine": args.routine},
            )
            handle = submit(
                spec,
                n_workers=args.workers,
                queue_dir=args.queue,
                lease_seconds=args.lease_seconds,
            )
        print(f"queue: {handle.queue_dir}")
        merged = handle.result()
        wall = time.perf_counter() - t0

        points = merged.sweep_points()
        print(f"{'N_orb':>6}  {'mode':<16}  {'fp32 s':>12}  {'mode s':>12}  "
              f"{'speedup':>8}")
        for p in points:
            print(f"{p.n_orb:>6}  {p.mode.env_value:<16}  {p.fp32_seconds:>12.6g}  "
                  f"{p.mode_seconds:>12.6g}  {p.speedup:>8.3f}")
        print()
        shards = ", ".join(
            f"{w}:{int(m['cells'])}" for w, m in sorted(merged.stats.per_worker.items())
        )
        print(f"{len(points)} points from {len(merged.stats.per_worker)} shard(s) "
              f"[{shards}] in {wall:.2f}s; "
              f"{merged.stats.duplicates} duplicate(s) discarded, "
              f"{merged.stats.steals} steal(s), "
              f"{merged.stats.lease_takeovers} lease takeover(s).")
    if args.telemetry is not None:
        print(f"telemetry exported to {args.telemetry}/")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
