#!/usr/bin/env python
"""Render (and gate on) the claim-coverage matrix.

Every row of :data:`repro.experiments.claims.CLAIMS` maps a quoted
paper (or extension) claim to its implementing module, its pinning
test and a live checker.  This script turns that mapping into a
markdown artifact — ``claim_coverage.md`` — and *verifies* it:

* every live checker is re-run; a FAIL fails the build;
* every named pinning test must still exist — the file must be present
  and, for ``path::Node`` references, the class or function must still
  be defined in it.  A renamed or deleted test silently breaks the
  traceability chain, so that fails the build too.

Usage::

    python scripts/make_claim_coverage.py [--output claim_coverage.md]
        [--report-only]

``--report-only`` prints violations but exits 0 (for local preview);
CI runs the default gating mode.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path
from typing import List, Tuple

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))


def split_test_refs(field: str) -> List[str]:
    """A claim's ``test`` field may name several tests, ``" / "``-separated."""
    return [ref.strip() for ref in field.split(" / ") if ref.strip()]


def check_test_ref(ref: str, root: Path = REPO_ROOT) -> Tuple[bool, str]:
    """Whether a ``path[::Node]`` pinning-test reference still resolves.

    The node check is textual on purpose — importing the test modules
    would drag in their fixtures; what the gate needs is that the named
    class/function is still *defined* in the named file.
    """
    path_part, _, node = ref.partition("::")
    path = root / path_part
    if not path.is_file():
        return False, f"missing test file: {path_part}"
    if node:
        text = path.read_text()
        if not re.search(rf"^\s*(?:class|def)\s+{re.escape(node)}\b", text, re.M):
            return False, f"no class/def {node!r} in {path_part}"
    return True, "ok"


def build_matrix() -> Tuple[List[tuple], List[str]]:
    """(markdown rows, violations).  Runs every live checker."""
    from repro.experiments.claims import CLAIMS, evaluate_claims

    status = {row[0]: row[1] for row in evaluate_claims()}
    rows = []
    violations = []
    for claim in CLAIMS:
        checker = status[claim.claim_id]
        if checker != "PASS":
            violations.append(f"{claim.claim_id}: live checker FAILED")
        test_cells = []
        for ref in split_test_refs(claim.test):
            ok, why = check_test_ref(ref)
            test_cells.append(f"`{ref}`" if ok else f"`{ref}` **(missing)**")
            if not ok:
                violations.append(f"{claim.claim_id}: {why}")
        rows.append(
            (
                claim.claim_id,
                claim.source,
                claim.module,
                "<br>".join(test_cells),
                checker,
            )
        )
    return rows, violations


def render_markdown(rows: List[tuple]) -> str:
    lines = [
        "# Claim coverage",
        "",
        "Every checkable claim, its implementing module, the test that",
        "pins it, and the live checker's verdict at generation time.",
        "Regenerate with `python scripts/make_claim_coverage.py`.",
        "",
        "| Claim | Source | Module | Pinning test | Checker |",
        "|---|---|---|---|---|",
    ]
    for claim_id, source, module, tests, checker in rows:
        mark = "PASS" if checker == "PASS" else "**FAIL**"
        lines.append(f"| `{claim_id}` | {source} | `{module}` | {tests} | {mark} |")
    n_pass = sum(1 for r in rows if r[4] == "PASS")
    lines += ["", f"{n_pass}/{len(rows)} checkers passing.", ""]
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", default=str(REPO_ROOT / "claim_coverage.md"),
        help="where to write the markdown matrix",
    )
    parser.add_argument(
        "--report-only", action="store_true",
        help="print violations but exit 0",
    )
    args = parser.parse_args(argv)

    rows, violations = build_matrix()
    Path(args.output).write_text(render_markdown(rows))
    print(f"wrote {args.output} ({len(rows)} claims)")
    for violation in violations:
        print(f"VIOLATION: {violation}", file=sys.stderr)
    if violations and not args.report_only:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
