#!/usr/bin/env python
"""The portability claim: BLAS compute modes on a QMC workload.

The paper's abstract ends with "the approach we demonstrate here could
be readily applied to other HPC workloads that spend a significant
amount of time in BLAS calls", and its future work names QMCPACK.
This example runs the same ``MKL_BLAS_COMPUTE_MODE`` study on the
bundled projection-QMC workload — a GEMM-dominated imaginary-time
projector with a *closed-form exact answer* — and shows the DCMESH
conclusions transfer: the BF16 family's accuracy ladder, TF32 in
between, and modelled speedups that grow with problem size.

Run:  python examples/qmc_precision.py
"""

from repro.core.report import render_table
from repro.qmc import qmc_mode_study, tight_binding_hamiltonian


def main() -> None:
    h = tight_binding_hamiltonian((6, 6, 6), disorder=0.5, seed=0)
    print(
        f"Workload: imaginary-time projection QMC on a {h.n_sites}-site "
        "disordered lattice, 16 particles.\n"
        "Every propagation step is one sgemm; the environment variable "
        "is the only thing that changes between rows.\n"
    )
    rows = qmc_mode_study(hamiltonian=h, n_particles=16, n_steps=400)
    table = [
        (
            r.mode.env_value,
            r.final_energy,
            r.error,
            r.deviation_from_fp32,
            r.modelled_speedup,
        )
        for r in rows
    ]
    print(render_table(
        ("Mode", "Final energy", "|E - exact|", "|E - FP32|",
         "Modelled GEMM speedup"),
        table,
        title="Compute modes on the QMC workload (exact E from diagonalisation)",
    ))
    std = next(r for r in rows if r.mode.env_value == "STANDARD")
    bf16 = next(r for r in rows if r.mode.env_value == "FLOAT_TO_BF16")
    print(
        f"\nBF16 shifts the energy by {bf16.deviation_from_fp32:.1e} — "
        f"{bf16.deviation_from_fp32 / max(std.error, 1e-30):.0%} of the "
        "method's own projection error — while the dominant GEMM models "
        f"{bf16.modelled_speedup:.1f}x faster.  The paper's trade-off, "
        "on a second application, zero code change."
    )


if __name__ == "__main__":
    main()
