#!/usr/bin/env python
"""The artifact's exact run recipe, end to end.

Writes the three DCMESH input files (``PTOquick.dc``, ``CONFIG``,
``lfd.in``) to a work directory, loads them back, runs the simulation
under two environment configurations — exporting the variables just
like the artifact appendix — and pipes each run's QD lines to a log
file for offline analysis.

Run:  python examples/run_from_input_files.py [workdir]
"""

import sys
from pathlib import Path

import numpy as np

from repro.blas.env import paper_run_env, scoped_env
from repro.blas.modes import ComputeMode
from repro.dcmesh import Simulation, SimulationConfig
from repro.dcmesh.io import (
    load_simulation_config,
    read_run_log,
    save_simulation_config,
    write_run_log,
)


def main(workdir: str = "dcmesh_workdir") -> None:
    work = Path(workdir)

    # 1. Write the input deck (a scaled-down 40-atom-style system).
    config = SimulationConfig.small_test(n_qd_steps=60, nscf=30)
    save_simulation_config(work, config)
    print(f"Input files written to {work}/: PTOquick.dc, CONFIG, lfd.in")

    # 2. Load them back — this is all a run needs.
    loaded = load_simulation_config(work)
    sim = Simulation(loaded)
    sim.setup()

    # 3. Run per the artifact: export the env vars, execute, pipe to a log.
    for mode in (ComputeMode.STANDARD, ComputeMode.FLOAT_TO_BF16):
        env = paper_run_env(mode)
        exports = " ".join(f"{k}={v}" for k, v in env.items() if v is not None)
        print(f"\n$ export {exports or '(nothing)'}; dcehd")
        with scoped_env(env):
            result = sim.run()
        log_path = work / f"run_{mode.env_value}.log"
        write_run_log(log_path, result.records, header=f"mode: {mode.env_value}")
        print(f"  -> {len(result.records)} QD records piped to {log_path}")

    # 4. Offline analysis from the text logs, like the authors did.
    ref = read_run_log(work / "run_STANDARD.log")
    alt = read_run_log(work / "run_FLOAT_TO_BF16.log")
    ekin_dev = np.abs(
        np.array([r.ekin for r in alt]) - np.array([r.ekin for r in ref])
    )
    nexc_dev = np.abs(
        np.array([r.nexc for r in alt]) - np.array([r.nexc for r in ref])
    )
    print("\nPost-hoc deviation analysis (from the log files):")
    print(f"  max |ekin dev| = {ekin_dev.max():.3e} Ha")
    print(f"  max |nexc dev| = {nexc_dev.max():.3e} electrons")


if __name__ == "__main__":
    main(*sys.argv[1:2])
