#!/usr/bin/env python
"""Per-function mixed precision — exploring the paper's future work.

Section IV-D: "because the Intel MKL controls are environment
variables affecting the library as a whole, our study here is limited
to configurations where all BLAS calls are run at the same precision.
The effects of running different BLAS calls at different levels of
precision is left to future work."

The API layer has no such limitation.  This example compares three
policies on the same simulation:

* uniform BF16 (the paper's fastest global mode),
* uniform BF16x3 (the paper's most accurate alternative mode),
* **mixed**: BF16x3 where it mutates the state (``nlp_prop``), BF16
  where it only measures (``calc_energy`` / ``remap_occ``),

and shows the mixed policy keeps nearly the accuracy of x3 at nearly
the modelled cost of BF16.

Run:  python examples/mixed_precision_policy.py
"""

import numpy as np

from repro.blas.policy import SitePolicy
from repro.core.report import render_table
from repro.core.schedule import qd_step_schedule
from repro.dcmesh import Simulation, SimulationConfig
from repro.gpu import GemmModel
from repro.blas.modes import ComputeMode


def modelled_step_blas_seconds(policy_modes: dict) -> float:
    """Paper-scale (135-atom) per-step BLAS time under a site policy."""
    model = GemmModel()
    gemms, _ = qd_step_schedule(96**3, 1024, 432)
    total = 0.0
    for g in gemms:
        mode = ComputeMode.parse(policy_modes.get(g.site, "STANDARD"))
        total += model.seconds(g.routine, g.m, g.n, g.k, mode)
    return total


def main() -> None:
    cfg = SimulationConfig.small_test(n_qd_steps=80, nscf=40)
    sim = Simulation(cfg)
    sim.setup()
    reference = sim.run(mode="STANDARD")

    policies = {
        "uniform BF16": {s: "FLOAT_TO_BF16" for s in ("nlp_prop", "calc_energy", "remap_occ")},
        "uniform BF16x3": {s: "FLOAT_TO_BF16X3" for s in ("nlp_prop", "calc_energy", "remap_occ")},
        "mixed (x3 state / BF16 observe)": {
            "nlp_prop": "FLOAT_TO_BF16X3",
            "calc_energy": "FLOAT_TO_BF16",
            "remap_occ": "FLOAT_TO_BF16",
        },
    }

    rows = []
    for name, site_modes in policies.items():
        with SitePolicy(site_modes).active():
            result = sim.run()
        # State drift: distance of the final wavefunction from the
        # FP32 trajectory's — isolates nlp_prop's (state-mutating)
        # precision from the (observable-only) measurement precision.
        state_drift = float(
            np.abs(result.final_psi - reference.final_psi).max()
        )
        dev = np.abs(result.column("ekin") - reference.column("ekin"))
        blas_s = modelled_step_blas_seconds(site_modes)
        rows.append((name, state_drift, float(dev.max()), blas_s))

    print(render_table(
        ("Policy", "Final state drift", "Max |ekin dev|",
         "Modelled BLAS s/step (135-atom)"),
        rows,
        title="Mixed-precision policies vs the FP32 reference",
    ))
    uniform_bf16, uniform_x3, mixed = rows
    print(
        f"\nMixed policy: {uniform_bf16[1] / mixed[1]:.0f}x less state drift than "
        f"uniform BF16, at {mixed[3] / uniform_bf16[3]:.2f}x its modelled BLAS cost "
        f"(uniform BF16x3 costs {uniform_x3[3] / uniform_bf16[3]:.2f}x).  The\n"
        f"remaining ekin deviation is the BF16 *measurement* in calc_energy, "
        f"not trajectory error."
    )


if __name__ == "__main__":
    main()
