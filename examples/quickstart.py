#!/usr/bin/env python
"""Quickstart: run DCMESH once at FP32 and once in BF16 mode.

Reproduces the paper's core workflow on a laptop-scale system:

1. converge the FP64 ground state (the QXMD/SCF phase),
2. propagate the laser-driven dynamics at FP32 storage,
3. flip ``MKL_BLAS_COMPUTE_MODE`` — no other change — and rerun,
4. compare the key observables (ekin, nexc, javg).

Run:  python examples/quickstart.py
      python examples/quickstart.py out/   # + telemetry bundle and run_report.md
"""

import sys

import numpy as np

from repro.blas.verbose import format_verbose_line, mkl_verbose
from repro.dcmesh import Simulation, SimulationConfig


def main(out_dir=None) -> None:
    # A structurally-complete small system: one PbTiO3-like cell,
    # 12^3 mesh, 24 orbitals (16 occupied).  Same code path as the
    # paper's 135-atom run, ~1000x smaller.
    config = SimulationConfig.small_test(n_qd_steps=80, nscf=40)
    sim = Simulation(config)

    print("Converging FP64 ground state (QXMD/SCF)...")
    ground = sim.setup()
    print(
        f"  converged={ground.converged} after {ground.n_iter} iterations, "
        f"band energy {ground.band_energy:.4f} Ha"
    )

    print("\nRunning LFD at FP32 (reference)...")
    ref = sim.run(mode="STANDARD")

    print("Running LFD with MKL_BLAS_COMPUTE_MODE=FLOAT_TO_BF16...")
    monitor = collector = None
    if out_dir is not None:
        # Telemetry + drift monitoring against the FP32 trajectory we
        # just produced; the export below includes run_report.md.
        from repro.telemetry import registry
        from repro.telemetry.drift import DriftMonitor, ReferenceTrajectory

        monitor = DriftMonitor(reference=ReferenceTrajectory.from_result(ref))
        collector = registry.enable()
    with mkl_verbose() as log:
        bf16 = sim.run(mode="FLOAT_TO_BF16", drift=monitor)
    if collector is not None:
        registry.disable()
    print(f"  {len(log)} BLAS calls issued; first three:")
    for record in log[:3]:
        print("   ", format_verbose_line(record))

    print("\nDeviation from FP32 (the paper's Fig. 1 metric):")
    for obs in ("ekin", "nexc", "javg"):
        dev = np.abs(bf16.column(obs) - ref.column(obs))
        print(f"  {obs:5s}: max |dev| = {dev.max():.3e}, final = {dev[-1]:.3e}")

    final = bf16.records[-1]
    print(
        f"\nFinal state (BF16 run): t = {final.time_fs:.3f} fs, "
        f"nexc = {final.nexc:.4f} excited electrons, "
        f"ekin = {final.ekin:.4f} Ha"
    )

    if collector is not None:
        from repro.telemetry.exporters import export_all

        paths = export_all(collector, out_dir)
        names = ", ".join(sorted(p.name for p in paths.values()))
        print(f"\ntelemetry exported to {out_dir} ({names})")
        print(
            f"drift: {len(monitor.alerts)} alert(s), "
            f"{len(monitor.breaches())} budget breach(es)"
        )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else None)
