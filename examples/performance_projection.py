#!/usr/bin/env python
"""Performance projection: Fig. 3a/3b for arbitrary system sizes.

Uses the calibrated Max 1550 device model to answer the scaling
question behind the paper's Fig. 3: at what problem size do the
alternative compute modes start paying off, and by how much?

Run:  python examples/performance_projection.py
"""


from repro.blas.modes import ComputeMode
from repro.core.blas_sweep import BlasSweep
from repro.core.perfstudy import PerfStudy
from repro.core.report import render_table
from repro.profiling.unitrace import unitrace_report
from repro.gpu import Device
from repro.types import Precision


def fig3a_projection() -> None:
    study = PerfStudy()
    systems = {
        "40-atom (64^3, 256 orb)": (64**3, 256, 128),
        "135-atom (96^3, 1024 orb)": (96**3, 1024, 432),
        "hypothetical 320-atom (128^3, 2048 orb)": (128**3, 2048, 1024),
    }
    fig = study.figure_3a(systems=systems)
    rows = []
    for system, timings in fig.items():
        speedups = study.speedup_over_fp32(timings)
        for t in timings:
            rows.append((system, t.label, t.block_seconds(500),
                         speedups[t.label], t.blas_fraction))
    print(render_table(
        ("System", "Config", "500 QD steps (s)", "vs FP32", "BLAS frac"),
        rows,
        title="Fig. 3a projection (modelled single Max 1550 stack)",
    ))


def fig3b_projection() -> None:
    sweep = BlasSweep()
    norbs = (256, 512, 1024, 2048, 4096, 8192)
    points = sweep.sweep(norbs=norbs)
    by_norb = {}
    for p in points:
        by_norb.setdefault(p.n_orb, {})[p.mode.env_value] = p.speedup
    modes = [m.env_value for m in
             (ComputeMode.FLOAT_TO_BF16, ComputeMode.FLOAT_TO_TF32,
              ComputeMode.FLOAT_TO_BF16X2, ComputeMode.FLOAT_TO_BF16X3,
              ComputeMode.COMPLEX_3M)]
    rows = [(n, *[by_norb[n][m] for m in modes]) for n in norbs]
    print()
    print(render_table(("N_orb", *modes), rows,
                       title="Fig. 3b projection, extended to N_orb = 8192"))


def unitrace_view() -> None:
    """Where does one modelled 135-atom QD step spend its time?"""
    from repro.core.schedule import psi_bytes, qd_step_schedule

    device = Device()
    gemms, streams = qd_step_schedule(96**3, 1024, 432, Precision.FP32)
    for g in gemms:
        device.record_gemm(g.routine, g.m, g.n, g.k, ComputeMode.STANDARD, site=g.site)
    buf = psi_bytes(96**3, 1024, Precision.FP32)
    for s in streams:
        device.record_stream(s.name, s.passes * buf, buffer_bytes=buf, site=s.site)
    print()
    print("unitrace view of one modelled 135-atom FP32 QD step:")
    print(unitrace_report(device.timeline).render())


def counters_view() -> None:
    """Hardware-counter-style utilisation of the modelled step."""
    from repro.blas.gemm import use_device
    from repro.blas.modes import compute_mode
    from repro.blas.verbose import mkl_verbose
    from repro.core.schedule import qd_step_schedule
    from repro.gpu.counters import utilization_table

    device = Device()
    gemms, _ = qd_step_schedule(96**3, 1024, 432, Precision.FP32)
    with use_device(device), mkl_verbose() as log, compute_mode("FLOAT_TO_BF16"):
        # Record the schedule's calls through the booking path only
        # (shapes matter, data does not): emit one record per call.
        from repro.blas.modes import ComputeMode
        from repro.blas.verbose import VerboseRecord, record_call

        for g in gemms:
            secs = device.record_gemm(
                g.routine, g.m, g.n, g.k, ComputeMode.FLOAT_TO_BF16, site=g.site
            )
            record_call(VerboseRecord(
                routine=g.routine, trans_a="N", trans_b="N",
                m=g.m, n=g.n, k=g.k, mode=ComputeMode.FLOAT_TO_BF16,
                seconds=secs, model_seconds=secs, site=g.site,
            ))
        rows = utilization_table(log)
    print()
    print(render_table(
        ("Site", "Routine", "Mode", "Calls", "Seconds", "TFLOP/s", "x FP32 peak"),
        rows,
        title="Modelled utilisation of one 135-atom BF16 QD step's BLAS",
    ))


def main() -> None:
    fig3a_projection()
    fig3b_projection()
    unitrace_view()
    counters_view()


if __name__ == "__main__":
    main()
