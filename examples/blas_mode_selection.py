#!/usr/bin/env python
"""Mode-selection guide: which compute mode fits *your* workload?

The paper's closing point is that the environment-variable approach
"could be readily applied to other HPC workloads that spend a
significant amount of time in BLAS calls".  This tool makes that
concrete: give it your GEMM shape and the fraction of runtime you
spend in BLAS, and it combines

* the Max 1550 device model (modelled per-call speedup), and
* the analytic accuracy model of Section V-B (relative error bound)

into an Amdahl-style projection and a recommendation per accuracy
budget.

Run:  python examples/blas_mode_selection.py [m n k blas_fraction]
e.g.: python examples/blas_mode_selection.py 128 3968 262144 0.5
"""

import sys

from repro.blas.modes import ComputeMode
from repro.core.error_model import mode_effective_error
from repro.core.report import render_table
from repro.gpu import GemmModel

MODES = [
    ComputeMode.FLOAT_TO_BF16,
    ComputeMode.FLOAT_TO_BF16X2,
    ComputeMode.FLOAT_TO_BF16X3,
    ComputeMode.FLOAT_TO_TF32,
    ComputeMode.COMPLEX_3M,
]


def analyse(m: int, n: int, k: int, blas_fraction: float):
    model = GemmModel()
    rows = []
    for mode in MODES:
        call_speedup = model.speedup_vs_fp32("cgemm", m, n, k, mode)
        # Amdahl: only the BLAS fraction accelerates.
        end_to_end = 1.0 / ((1 - blas_fraction) + blas_fraction / call_speedup)
        error = mode_effective_error(mode)
        bound = model.cost("cgemm", m, n, k, mode).bound
        rows.append((mode.env_value, call_speedup, end_to_end, error, bound))
    return rows


def recommend(rows, error_budget: float) -> str:
    eligible = [(r[0], r[2]) for r in rows if r[3] <= error_budget]
    if not eligible:
        return "STANDARD (no alternative mode meets the budget)"
    return max(eligible, key=lambda x: x[1])[0]


def main(argv) -> None:
    if len(argv) >= 4:
        m, n, k = int(argv[0]), int(argv[1]), int(argv[2])
        frac = float(argv[3]) if len(argv) > 3 else 0.5
    else:
        # Default: the paper's large remap_occ call, 50% BLAS runtime.
        m, n, k, frac = 128, 3968, 262144, 0.5

    print(f"Workload: cgemm({m}, {n}, {k}), {frac:.0%} of runtime in BLAS\n")
    rows = analyse(m, n, k, frac)
    print(render_table(
        ("Mode", "Call speedup", "End-to-end", "Input rel. error", "Bound"),
        rows,
        title="Projected on one Intel Max 1550 stack",
    ))
    print()
    for budget, label in [(1e-2, "~1% error tolerable"),
                          (1e-4, "4-digit accuracy needed"),
                          (5e-8, "near-FP32 accuracy needed")]:
        print(f"  {label:28s} -> {recommend(rows, budget)}")


if __name__ == "__main__":
    main(sys.argv[1:])
