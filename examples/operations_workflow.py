#!/usr/bin/env python
"""Operational features on one run: checkpointing, diagnostics, tracing.

A paper-scale accuracy run is ~2 days per mode; this example shows the
machinery a production campaign needs, on the laptop-scale system:

1. run with a checkpoint written at every SCF block boundary,
2. kill/resume — the continuation is bitwise identical,
3. collect unitarity/orthonormality health diagnostics per step and
   watch the FP64 SCF reset repair the drift,
4. export the modelled device timeline as a Chrome trace.

Run:  python examples/operations_workflow.py [workdir]
"""

import sys
from pathlib import Path


from repro.dcmesh import DiagnosticsCollector, Simulation, SimulationConfig
from repro.dcmesh.io import load_checkpoint
from repro.gpu import Device, write_chrome_trace


def main(workdir: str = "ops_workdir") -> None:
    work = Path(workdir)
    work.mkdir(parents=True, exist_ok=True)
    cfg = SimulationConfig.small_test(n_qd_steps=80, nscf=20)
    device = Device()
    sim = Simulation(cfg, device=device)
    sim.setup()

    # 1-2: checkpointed run + bitwise resume.
    ckpt_path = work / "state.npz"
    diag = DiagnosticsCollector(sim.mesh)
    full = sim.run(mode="FLOAT_TO_BF16", checkpoint_path=ckpt_path,
                   diagnostics=diag)
    ckpt = load_checkpoint(ckpt_path)
    print(f"checkpoint written at QD step {ckpt.step} -> {ckpt_path}")
    resumed = sim.run(mode="FLOAT_TO_BF16", resume_from=ckpt)
    tail = full.records[-len(resumed.records):]
    identical = all(a == b for a, b in zip(resumed.records, tail))
    print(f"resumed run bitwise identical to the uninterrupted tail: {identical}")

    # 3: health diagnostics.
    gram = diag.column("gram_error")
    steps = diag.column("step")
    print("\nGram-matrix error |Psi^H Psi - I| around the SCF resets:")
    for boundary in range(cfg.nscf, cfg.n_qd_steps, cfg.nscf):
        before = gram[steps == boundary][0]
        after = gram[steps == boundary + 1][0]
        print(f"  step {boundary:3d}: {before:.3e}  ->  step {boundary + 1}: {after:.3e}")
    print(f"FP64 reset visibly repairs the drift: {diag.reset_visible(cfg.nscf)}")

    # 4: Chrome trace of the modelled device.
    trace = work / "device_trace.json"
    write_chrome_trace(trace, device.timeline)
    print(
        f"\n{len(device.timeline)} modelled kernels "
        f"({device.total_l0_time():.3f} s of modelled device time) -> {trace}"
    )
    print("open in chrome://tracing or https://ui.perfetto.dev")


if __name__ == "__main__":
    main(*sys.argv[1:2])
