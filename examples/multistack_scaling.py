#!/usr/bin/env python
"""Multi-stack scaling projection — the paper's closing future work.

"We would like to continue our work with DCMESH in the analysis of
how alternative BLAS precision modes impact accuracy and performance
in multi-stack and multi-node runs."

The model splits the orbital dimension over stacks and charges the
subspace all-reduces to the interconnect.  The punchline it exposes:
communication volume is mode-independent, so the faster the compute
mode, the sooner it hits the communication wall — BF16's parallel
efficiency decays before FP32's.

Run:  python examples/multistack_scaling.py
"""

from repro.blas.modes import ComputeMode
from repro.core.report import render_table
from repro.gpu.multistack import MultiStackModel, NODE_FABRIC, XE_LINK

SYSTEM = dict(n_grid=96**3, n_orb=1024, n_occ=432)   # the 135-atom workload
STACKS = (1, 2, 4, 8)
MODES = (ComputeMode.STANDARD, ComputeMode.FLOAT_TO_BF16, ComputeMode.FLOAT_TO_TF32)


def scaling_table(link, title: str) -> None:
    model = MultiStackModel(link=link)
    rows = []
    for mode in MODES:
        for point in model.scaling_curve(**SYSTEM, mode=mode, stack_counts=STACKS):
            rows.append((
                mode.env_value if mode is not ComputeMode.STANDARD else "FP32",
                point.n_stacks,
                point.step_seconds,
                point.comm_seconds,
                point.speedup,
                point.efficiency,
            ))
    print(render_table(
        ("Mode", "Stacks", "Step (s)", "Comm (s)", "Speedup", "Efficiency"),
        rows,
        title=title,
    ))
    print()


def main() -> None:
    scaling_table(XE_LINK, "135-atom QD step over Xe Link (intra-card stacks)")
    scaling_table(NODE_FABRIC, "Same workload over a node fabric (multi-node)")
    print(
        "Note how BF16's parallel efficiency falls below FP32's at every\n"
        "stack count: the all-reduce volume does not shrink with the\n"
        "compute mode, so Amdahl bites the fast modes first."
    )


if __name__ == "__main__":
    main()
