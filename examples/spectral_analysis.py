#!/usr/bin/env python
"""Optical spectra from the QD current trace — and their mode-robustness.

Runs a longer laser-driven simulation, computes the emission (power)
and absorption spectra from the recorded current density, and checks
that the *spectral* observables — like the paper's raw observables —
survive the BF16 compute mode.

Run:  python examples/spectral_analysis.py
"""

import numpy as np

from repro.core.report import render_table
from repro.dcmesh import Simulation, SimulationConfig
from repro.dcmesh.constants import HARTREE_EV
from repro.dcmesh.spectra import absorption_spectrum, power_spectrum


def main() -> None:
    cfg = SimulationConfig.small_test(
        n_qd_steps=400, nscf=100, move_ions=False,
    )
    sim = Simulation(cfg)
    sim.setup()

    print("Running FP32 and BF16 trajectories...")
    runs = {name: sim.run(mode=name) for name in ("STANDARD", "FLOAT_TO_BF16")}

    rows = []
    spectra = {}
    for name, result in runs.items():
        spec = power_spectrum(result.records, damping=2e-3)
        absn = absorption_spectrum(result.records, cfg.laser)
        spectra[name] = spec
        drive_ev = cfg.laser.omega * HARTREE_EV
        rows.append(
            (name,
             spec.peak_energy(window_ev=(0.2, 30.0)),
             drive_ev,
             float(np.abs(absn.values).max()))
        )
    print(render_table(
        ("Run", "Emission peak (eV)", "Drive photon (eV)", "Max |Im sigma|"),
        rows,
        title="Spectral analysis of the current trace",
    ))

    ref, alt = spectra["STANDARD"], spectra["FLOAT_TO_BF16"]
    # Compare the normalised spectral shapes.
    r = ref.values / ref.values.max()
    a = alt.values / alt.values.max()
    print(f"\nBF16 vs FP32 spectral shape deviation: {np.abs(r - a).max():.2e}")
    print("The compute mode perturbs the trajectory at the 1e-3 level;")
    print("the spectral features it feeds remain intact.")


if __name__ == "__main__":
    main()
