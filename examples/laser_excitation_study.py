#!/usr/bin/env python
"""Accuracy study: all five compute modes on a laser-driven system.

This is the Artifact-A2 workflow (the paper's Figs. 1 and 2): run the
identical simulation once per ``MKL_BLAS_COMPUTE_MODE`` value plus the
FP32 reference, extract the deviation of nexc / javg / ekin over time,
and write the series to CSV for plotting.

Run:  python examples/laser_excitation_study.py [output_dir]
"""

import sys
from pathlib import Path

import numpy as np

from repro.core.report import render_table, write_csv
from repro.core.study import PrecisionStudy
from repro.dcmesh import SimulationConfig


def main(output_dir: str = "study_output") -> None:
    config = SimulationConfig.small_test(
        mesh_shape=(12, 12, 12), n_orb=24, n_qd_steps=150, nscf=50
    )
    study = PrecisionStudy(config)

    print("Running the FP32 reference plus five alternative modes...")
    result = study.run(progress=lambda m: print(f"  {m.env_value}"))

    rows = []
    for obs, series_list in result.deviations.items():
        for s in series_list:
            rows.append(
                (obs, s.mode.env_value, s.max_deviation, s.final_deviation,
                 float(np.nanmax(s.relative())))
            )
    print()
    print(render_table(
        ("Observable", "Mode", "Max |dev|", "Final |dev|", "Max relative"),
        rows,
        title="Deviation from FP32 (cf. paper Fig. 1)",
    ))

    out = Path(output_dir)
    for obs, series_list in result.deviations.items():
        headers = ["time_fs"] + [s.mode.env_value for s in series_list]
        data = list(zip(series_list[0].time_fs,
                        *[s.deviation for s in series_list]))
        write_csv(out / f"deviation_{obs}.csv", headers, data)
    # Fig. 2: log10 of the current-density deviation.
    j_series = result.deviations["javg"]
    headers = ["time_fs"] + [s.mode.env_value for s in j_series]
    data = list(zip(j_series[0].time_fs,
                    *[s.log10(floor=1e-30) for s in j_series]))
    write_csv(out / "deviation_javg_log10.csv", headers, data)
    print(f"\nTime series written to {out}/")


if __name__ == "__main__":
    main(*sys.argv[1:2])
